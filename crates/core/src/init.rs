//! Initial-state strategies.
//!
//! The processes of the paper are *self-stabilizing*: they must reach a
//! correct MIS from **any** initial assignment of vertex states. The
//! strategies here cover the initializations used by the experiments:
//! the two deterministic extremes (`AllWhite`, `AllBlack`), a uniformly
//! random assignment, and a deterministic alternating pattern that acts as a
//! cheap adversarial configuration (it maximizes initial inconsistency on
//! paths, cycles, grids, and bipartite-like graphs).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::three_color::ThreeColor;
use crate::three_state::ThreeState;
use crate::two_state::Color;

/// Strategy for choosing the initial state vector of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InitStrategy {
    /// Every vertex starts white (no vertex claims MIS membership).
    AllWhite,
    /// Every vertex starts black (every vertex claims MIS membership).
    AllBlack,
    /// Every vertex starts with an independent uniformly random state.
    Random,
    /// Vertices alternate states by id parity (even ids black, odd ids white).
    Alternating,
}

impl InitStrategy {
    /// Initial colors for the 2-state process.
    pub fn two_state<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<Color> {
        (0..n)
            .map(|u| match self {
                InitStrategy::AllWhite => Color::White,
                InitStrategy::AllBlack => Color::Black,
                InitStrategy::Random => {
                    if rng.gen_bool(0.5) {
                        Color::Black
                    } else {
                        Color::White
                    }
                }
                InitStrategy::Alternating => {
                    if u % 2 == 0 {
                        Color::Black
                    } else {
                        Color::White
                    }
                }
            })
            .collect()
    }

    /// Initial states for the 3-state process.
    pub fn three_state<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<ThreeState> {
        (0..n)
            .map(|u| match self {
                InitStrategy::AllWhite => ThreeState::White,
                InitStrategy::AllBlack => ThreeState::Black1,
                InitStrategy::Random => match rng.gen_range(0..3) {
                    0 => ThreeState::Black1,
                    1 => ThreeState::Black0,
                    _ => ThreeState::White,
                },
                InitStrategy::Alternating => {
                    if u % 2 == 0 {
                        ThreeState::Black1
                    } else {
                        ThreeState::White
                    }
                }
            })
            .collect()
    }

    /// Initial colors for the 3-color process.
    pub fn three_color<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<ThreeColor> {
        (0..n)
            .map(|u| match self {
                InitStrategy::AllWhite => ThreeColor::White,
                InitStrategy::AllBlack => ThreeColor::Black,
                InitStrategy::Random => match rng.gen_range(0..3) {
                    0 => ThreeColor::Black,
                    1 => ThreeColor::Gray,
                    _ => ThreeColor::White,
                },
                InitStrategy::Alternating => {
                    if u % 2 == 0 {
                        ThreeColor::Black
                    } else {
                        ThreeColor::White
                    }
                }
            })
            .collect()
    }

    /// Initial levels (`0..=5`) for the randomized logarithmic switch.
    ///
    /// The switch is itself self-stabilizing, so `AllWhite`/`AllBlack` map to
    /// the extreme levels 0 and 5, and `Random`/`Alternating` exercise mixed
    /// level vectors.
    pub fn switch_levels<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<u8> {
        (0..n)
            .map(|u| match self {
                InitStrategy::AllWhite => 0,
                InitStrategy::AllBlack => 5,
                InitStrategy::Random => rng.gen_range(0..=5),
                InitStrategy::Alternating => {
                    if u % 2 == 0 {
                        5
                    } else {
                        0
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn deterministic_strategies() {
        let mut r = rng();
        assert!(InitStrategy::AllWhite
            .two_state(5, &mut r)
            .iter()
            .all(|c| *c == Color::White));
        assert!(InitStrategy::AllBlack
            .two_state(5, &mut r)
            .iter()
            .all(|c| *c == Color::Black));
        let alt = InitStrategy::Alternating.two_state(4, &mut r);
        assert_eq!(
            alt,
            vec![Color::Black, Color::White, Color::Black, Color::White]
        );
        assert!(InitStrategy::AllWhite
            .three_state(3, &mut r)
            .iter()
            .all(|c| *c == ThreeState::White));
        assert!(InitStrategy::AllBlack
            .three_color(3, &mut r)
            .iter()
            .all(|c| *c == ThreeColor::Black));
        assert_eq!(
            InitStrategy::AllWhite.switch_levels(3, &mut r),
            vec![0, 0, 0]
        );
        assert_eq!(
            InitStrategy::AllBlack.switch_levels(3, &mut r),
            vec![5, 5, 5]
        );
    }

    #[test]
    fn random_strategy_produces_both_colors() {
        let mut r = rng();
        let states = InitStrategy::Random.two_state(200, &mut r);
        assert!(states.iter().any(|c| c.is_black()));
        assert!(states.iter().any(|c| !c.is_black()));
        let levels = InitStrategy::Random.switch_levels(500, &mut r);
        assert!(levels.iter().all(|&l| l <= 5));
        assert!(levels.contains(&0) && levels.contains(&5));
    }

    #[test]
    fn lengths_match() {
        let mut r = rng();
        for n in [0usize, 1, 17] {
            assert_eq!(InitStrategy::Random.two_state(n, &mut r).len(), n);
            assert_eq!(InitStrategy::Random.three_state(n, &mut r).len(), n);
            assert_eq!(InitStrategy::Random.three_color(n, &mut r).len(), n);
            assert_eq!(InitStrategy::Random.switch_levels(n, &mut r).len(), n);
        }
    }
}
