//! Shared-memory primitives for the intra-round parallel engine: plain
//! `Vec`-like containers backed by atomics, so concurrent phases can update
//! them through `&self` without `unsafe`.
//!
//! All operations use `Ordering::Relaxed`: the engine's phases are separated
//! by thread *joins* (which establish all the happens-before edges needed),
//! and within a phase every concurrent access is either a commutative
//! read-modify-write (`fetch_add`/`fetch_sub`/`fetch_xor`/`swap`) or a read
//! of data settled in an earlier phase. Relaxed atomics therefore give
//! deterministic results — the property the "bit-identical across thread
//! counts" contract rests on — at the cost of plain loads and stores on
//! mainstream ISAs.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};

/// A `Vec<u32>` with interior mutability: concurrent `add`/`sub` through
/// `&self`, plain get/set elsewhere.
#[derive(Debug, Default)]
pub struct AtomicU32Vec {
    data: Vec<AtomicU32>,
}

impl AtomicU32Vec {
    /// Creates a zero-filled vector of length `n`.
    pub fn new(n: usize) -> Self {
        AtomicU32Vec {
            data: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Overwrites element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: u32) {
        self.data[i].store(value, Ordering::Relaxed);
    }

    /// Atomically adds `delta` to element `i`.
    #[inline]
    pub fn add(&self, i: usize, delta: u32) {
        self.data[i].fetch_add(delta, Ordering::Relaxed);
    }

    /// Atomically subtracts `delta` from element `i`.
    #[inline]
    pub fn sub(&self, i: usize, delta: u32) {
        self.data[i].fetch_sub(delta, Ordering::Relaxed);
    }

    /// Adds `delta` to element `i` through `&mut self` — a plain (non
    /// lock-prefixed) read-modify-write for the exclusive sequential paths,
    /// where the atomic `fetch_add` would cost a bus lock per edge.
    #[inline]
    pub fn add_mut(&mut self, i: usize, delta: u32) {
        *self.data[i].get_mut() += delta;
    }

    /// Subtracts `delta` from element `i` through `&mut self` (plain RMW).
    #[inline]
    pub fn sub_mut(&mut self, i: usize, delta: u32) {
        *self.data[i].get_mut() -= delta;
    }

    /// Resets every element to zero.
    pub fn clear_all(&mut self) {
        for slot in &mut self.data {
            *slot.get_mut() = 0;
        }
    }

    /// Extends the vector with zeros up to length `new_n` (no-op if already
    /// that long) — topology growth support.
    pub fn grow(&mut self, new_n: usize) {
        while self.data.len() < new_n {
            self.data.push(AtomicU32::new(0));
        }
    }
}

impl Clone for AtomicU32Vec {
    fn clone(&self) -> Self {
        AtomicU32Vec {
            data: self
                .data
                .iter()
                .map(|v| AtomicU32::new(v.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A `Vec<bool>` with interior mutability and a test-and-set primitive
/// (used for concurrent dirty-mark deduplication).
#[derive(Debug, Default)]
pub struct AtomicFlagVec {
    data: Vec<AtomicBool>,
}

impl AtomicFlagVec {
    /// Creates an all-`false` vector of length `n`.
    pub fn new(n: usize) -> Self {
        AtomicFlagVec {
            data: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Overwrites element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: bool) {
        self.data[i].store(value, Ordering::Relaxed);
    }

    /// Atomically sets element `i` to `true` and returns the previous value;
    /// exactly one concurrent caller per element observes `false`.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        self.data[i].swap(true, Ordering::Relaxed)
    }

    /// [`test_and_set`](Self::test_and_set) through `&mut self`: a plain
    /// load + store instead of an atomic swap, for the exclusive sequential
    /// paths.
    #[inline]
    pub fn test_and_set_mut(&mut self, i: usize) -> bool {
        let slot = self.data[i].get_mut();
        std::mem::replace(slot, true)
    }

    /// Resets every element to `false`.
    pub fn clear_all(&mut self) {
        for slot in &mut self.data {
            *slot.get_mut() = false;
        }
    }

    /// Extends the vector with `false` up to length `new_n` (no-op if
    /// already that long) — topology growth support.
    pub fn grow(&mut self, new_n: usize) {
        while self.data.len() < new_n {
            self.data.push(AtomicBool::new(false));
        }
    }
}

impl Clone for AtomicFlagVec {
    fn clone(&self) -> Self {
        AtomicFlagVec {
            data: self
                .data
                .iter()
                .map(|v| AtomicBool::new(v.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A `Vec<u8>` of flag bytes with interior mutability and an atomic
/// bit-toggle (used for the engine's per-vertex flag bits).
#[derive(Debug, Default)]
pub struct AtomicU8Vec {
    data: Vec<AtomicU8>,
}

impl AtomicU8Vec {
    /// Creates a zero-filled vector of length `n`.
    pub fn new(n: usize) -> Self {
        AtomicU8Vec {
            data: (0..n).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Overwrites element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: u8) {
        self.data[i].store(value, Ordering::Relaxed);
    }

    /// Atomically toggles the bits in `mask` on element `i`.
    #[inline]
    pub fn xor(&self, i: usize, mask: u8) {
        self.data[i].fetch_xor(mask, Ordering::Relaxed);
    }

    /// Toggles the bits in `mask` on element `i` through `&mut self` (plain
    /// RMW, no bus lock) — for the exclusive sequential paths.
    #[inline]
    pub fn xor_mut(&mut self, i: usize, mask: u8) {
        *self.data[i].get_mut() ^= mask;
    }

    /// Extends the vector with zeros up to length `new_n` (no-op if already
    /// that long) — topology growth support.
    pub fn grow(&mut self, new_n: usize) {
        while self.data.len() < new_n {
            self.data.push(AtomicU8::new(0));
        }
    }
}

impl Clone for AtomicU8Vec {
    fn clone(&self) -> Self {
        AtomicU8Vec {
            data: self
                .data
                .iter()
                .map(|v| AtomicU8::new(v.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_vec_basic_ops() {
        let mut v = AtomicU32Vec::new(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        v.set(1, 7);
        v.add(1, 5);
        v.sub(1, 2);
        assert_eq!(v.get(1), 10);
        v.add_mut(1, 4);
        v.sub_mut(1, 1);
        assert_eq!(v.get(1), 13);
        v.clear_all();
        assert_eq!(v.get(1), 0);
        let w = v.clone();
        assert_eq!(w.get(0), 0);
    }

    #[test]
    fn flag_vec_test_and_set_is_once() {
        let mut v = AtomicFlagVec::new(3);
        assert!(!v.test_and_set(2));
        assert!(v.test_and_set(2));
        assert!(v.get(2));
        assert!(!v.test_and_set_mut(1));
        assert!(v.test_and_set_mut(1));
        v.set(1, false);
        let w = v.clone();
        assert!(w.get(2) && !w.get(0));
    }

    #[test]
    fn u8_vec_xor_toggles_bits() {
        let mut v = AtomicU8Vec::new(2);
        v.set(0, 0b0101);
        v.xor(0, 0b0011);
        assert_eq!(v.get(0), 0b0110);
        v.xor_mut(0, 0b0100);
        assert_eq!(v.get(0), 0b0010);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let v = AtomicU32Vec::new(1);
        rayon_scope_add(&v, 8, 10_000);
        assert_eq!(v.get(0), 80_000);
    }

    fn rayon_scope_add(v: &AtomicU32Vec, threads: usize, per_thread: u32) {
        rayon::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    for _ in 0..per_thread {
                        v.add(0, 1);
                    }
                });
            }
        });
    }

    #[test]
    fn disjoint_chunk_handout_through_broadcast() {
        // The pattern the engine uses for disjoint-range parallel writes
        // under `forbid(unsafe_code)`: pre-split a `&mut` slice and hand
        // each broadcast participant its chunk through a per-slot mutex.
        use std::sync::Mutex;
        type Slot<'a> = Mutex<Option<(usize, &'a mut [usize])>>;
        let mut data = vec![0usize; 1000];
        let pool = rayon::global_pool(4);
        let slots: Vec<Slot<'_>> = data
            .chunks_mut(250)
            .enumerate()
            .map(|(i, c)| Mutex::new(Some((i, c))))
            .collect();
        pool.broadcast(|ctx| {
            if let Some((i, chunk)) = slots
                .get(ctx.index())
                .and_then(|s| s.lock().unwrap().take())
            {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = (i * 250 + j) * 3;
                }
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }
}
