//! Execution modes for the round engine: the sequential-stream contract vs
//! counter-based intra-round parallelism.
//!
//! The repository supports two randomness models (see the README section
//! "Two randomness models"):
//!
//! * [`ExecutionMode::Sequential`] — every coin comes from one shared
//!   sequential RNG stream, drawn in ascending vertex order. This is the
//!   historical contract: `step` is bit-identical to the full-scan
//!   `step_reference` oracle for the same seed. One round cannot use more
//!   than one core.
//! * [`ExecutionMode::Parallel`] — every vertex's coin is a pure function
//!   of `(run_seed, vertex, round, draw)` via
//!   [`CounterRng`](crate::counter_rng::CounterRng), so draw order is
//!   irrelevant and a round can be computed by any number of threads.
//!   Results are **bit-identical for every thread count** (including 1),
//!   but follow a different (equally valid) random trajectory than the
//!   sequential stream.

use serde::{Deserialize, Serialize};

/// How a process executes its synchronous rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One shared sequential RNG stream, ascending vertex order; exactly the
    /// trace the `step_reference` oracles reproduce.
    #[default]
    Sequential,
    /// Counter-based per-vertex randomness with intra-round data parallelism
    /// on `threads` threads. `threads = 1` runs the same counter-based logic
    /// inline; results are identical for every `threads` value.
    Parallel {
        /// Number of worker threads for the intra-round phases.
        threads: usize,
    },
}

impl ExecutionMode {
    /// Number of worker threads this mode uses (1 for sequential).
    pub fn threads(&self) -> usize {
        match *self {
            ExecutionMode::Sequential => 1,
            ExecutionMode::Parallel { threads } => threads.max(1),
        }
    }

    /// `true` for [`ExecutionMode::Parallel`].
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecutionMode::Parallel { .. })
    }

    /// Short label for tables and CSV output (`sequential` /
    /// `parallel`).
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Sequential => "sequential",
            ExecutionMode::Parallel { .. } => "parallel",
        }
    }
}

/// Below this worklist size the parallel phases run on a single chunk
/// inline: spawning threads for a few hundred vertices costs more than the
/// work itself, and the late stabilization tail would otherwise pay a
/// spawn-join round trip per (near-empty) round. Results are unaffected —
/// counter-based randomness does not depend on the partition.
pub(crate) const PAR_WORK_THRESHOLD: usize = 2_048;

/// Splits `len` items into at most `threads` contiguous chunk bounds, or a
/// single chunk when `len` is below [`PAR_WORK_THRESHOLD`]. Returns the
/// `(start, end)` pairs, all non-empty.
pub(crate) fn chunk_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = if len < PAR_WORK_THRESHOLD {
        1
    } else {
        threads.max(1)
    };
    let chunks = threads.min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_helpers() {
        assert_eq!(ExecutionMode::Sequential.threads(), 1);
        assert_eq!(ExecutionMode::Parallel { threads: 4 }.threads(), 4);
        assert_eq!(ExecutionMode::Parallel { threads: 0 }.threads(), 1);
        assert!(!ExecutionMode::Sequential.is_parallel());
        assert!(ExecutionMode::Parallel { threads: 2 }.is_parallel());
        assert_eq!(ExecutionMode::default(), ExecutionMode::Sequential);
        assert_eq!(ExecutionMode::Sequential.label(), "sequential");
        assert_eq!(ExecutionMode::Parallel { threads: 8 }.label(), "parallel");
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for &(len, threads) in &[
            (0usize, 4usize),
            (1, 4),
            (PAR_WORK_THRESHOLD - 1, 8),
            (PAR_WORK_THRESHOLD, 8),
            (10_001, 3),
            (8, 16),
        ] {
            let bounds = chunk_bounds(len, threads);
            if len == 0 {
                assert!(bounds.is_empty() || bounds == vec![(0, 0)]);
                continue;
            }
            assert_eq!(bounds.first().unwrap().0, 0);
            assert_eq!(bounds.last().unwrap().1, len);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].1 > w[0].0);
            }
            if len < PAR_WORK_THRESHOLD {
                assert_eq!(bounds.len(), 1, "small worklists stay on one chunk");
            } else {
                assert!(bounds.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn mode_round_trips_through_json() {
        // Exercised through the serde stand-in used by ExperimentSpec.
        let modes = [
            ExecutionMode::Sequential,
            ExecutionMode::Parallel { threads: 8 },
        ];
        for mode in modes {
            let json = serde_json::to_string(&mode).unwrap();
            let back: ExecutionMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back);
        }
    }
}
