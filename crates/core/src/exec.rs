//! Execution modes for the round engine: the sequential-stream contract vs
//! counter-based intra-round parallelism.
//!
//! The repository supports two randomness models (see the README section
//! "Two randomness models"):
//!
//! * [`ExecutionMode::Sequential`] — every coin comes from one shared
//!   sequential RNG stream, drawn in ascending vertex order. This is the
//!   historical contract: `step` is bit-identical to the full-scan
//!   `step_reference` oracle for the same seed. One round cannot use more
//!   than one core.
//! * [`ExecutionMode::Parallel`] — every vertex's coin is a pure function
//!   of `(run_seed, vertex, round, draw)` via
//!   [`CounterRng`](crate::counter_rng::CounterRng), so draw order is
//!   irrelevant and a round can be computed by any number of threads.
//!   Results are **bit-identical for every thread count** (including 1),
//!   but follow a different (equally valid) random trajectory than the
//!   sequential stream.

use serde::{Deserialize, Serialize};

/// How a process executes its synchronous rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One shared sequential RNG stream, ascending vertex order; exactly the
    /// trace the `step_reference` oracles reproduce.
    #[default]
    Sequential,
    /// Counter-based per-vertex randomness with intra-round data parallelism
    /// on `threads` threads. `threads = 1` runs the same counter-based logic
    /// inline; results are identical for every `threads` value.
    Parallel {
        /// Number of worker threads for the intra-round phases.
        threads: usize,
    },
}

/// Upper bound on the `threads` knob, enforced by
/// [`ExecutionMode::validate`]: far above any useful width, low enough to
/// reject knob typos before they spawn a few million workers.
pub const MAX_THREADS: usize = 1024;

/// Resolves a `threads` knob value to an actual worker count: `0` means
/// auto-detect (`std::thread::available_parallelism`), anything else is
/// taken as-is.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |t| t.get())
    } else {
        threads
    }
}

impl ExecutionMode {
    /// Number of worker threads this mode uses: 1 for sequential; for
    /// parallel, the knob value with `0` resolved to the number of
    /// available cores.
    pub fn threads(&self) -> usize {
        match *self {
            ExecutionMode::Sequential => 1,
            ExecutionMode::Parallel { threads } => resolve_threads(threads),
        }
    }

    /// Validates the mode's knobs (spec-parse time check): the thread count
    /// must not exceed [`MAX_THREADS`]. `0` is valid (auto-detect).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ExecutionMode::Sequential => Ok(()),
            ExecutionMode::Parallel { threads } => {
                if threads > MAX_THREADS {
                    Err(format!(
                        "execution.threads = {threads} exceeds the maximum of {MAX_THREADS} \
                         (use 0 to auto-detect cores)"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// `true` for [`ExecutionMode::Parallel`].
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecutionMode::Parallel { .. })
    }

    /// Short label for tables and CSV output (`sequential` /
    /// `parallel`).
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Sequential => "sequential",
            ExecutionMode::Parallel { .. } => "parallel",
        }
    }
}

/// How a full synchronous round traverses the graph: the sparse worklist
/// path, the dense full-sweep path, or the adaptive (direction-optimizing)
/// choice between the two.
///
/// This is the Beamer-style push–pull idea applied to the round engine: the
/// sparse path costs `O(|A_t| + vol(A_t))` but pays for frontier
/// bookkeeping, sorting, and scattered delta updates per touched edge, while
/// the dense path streams the whole packed state array and recounts every
/// counter in `O(n + m)` with perfectly predictable memory traffic. When
/// nearly every vertex is active (the early phase of a self-stabilizing run
/// from a random configuration) the dense sweep wins; once the frontier
/// collapses into the silent tail the sparse path wins by orders of
/// magnitude. [`RoundStrategy::Auto`] compares the frontier size plus its
/// volume against `(n + 2m) / DENSE_SWITCH_DIVISOR` every round and picks
/// accordingly.
///
/// The choice never changes results: both paths draw the same coins for the
/// same vertices in the same (ascending) order in sequential execution, and
/// counter-based draws are order-independent in parallel execution, so
/// `auto`, forced `sparse`, and forced `dense` are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundStrategy {
    /// Per-round direction optimization: dense while the frontier is a
    /// constant fraction of the graph, sparse afterwards. The default.
    #[default]
    Auto,
    /// Always the incremental worklist path (the pre-adaptive behavior).
    Sparse,
    /// Always the full-sweep recount path (the reference-style traversal,
    /// minus its allocations and redundant scans).
    Dense,
}

impl RoundStrategy {
    /// Short lowercase label (`auto` / `sparse` / `dense`), also the JSON
    /// encoding.
    pub fn label(&self) -> &'static str {
        match self {
            RoundStrategy::Auto => "auto",
            RoundStrategy::Sparse => "sparse",
            RoundStrategy::Dense => "dense",
        }
    }

    /// Parses a label as produced by [`label`](Self::label)
    /// (case-insensitive).
    pub fn parse(label: &str) -> Option<RoundStrategy> {
        match label.to_ascii_lowercase().as_str() {
            "auto" => Some(RoundStrategy::Auto),
            "sparse" => Some(RoundStrategy::Sparse),
            "dense" => Some(RoundStrategy::Dense),
            _ => None,
        }
    }
}

// Hand-written serde: the spec knob reads `"auto" | "sparse" | "dense"`
// (lowercase, unlike the derive's variant-name strings).
impl Serialize for RoundStrategy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for RoundStrategy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) => RoundStrategy::parse(s).ok_or_else(|| {
                serde::Error::custom(format!(
                    "unknown round strategy '{s}' (expected auto, sparse, or dense)"
                ))
            }),
            _ => Err(serde::Error::custom("expected a round-strategy string")),
        }
    }
}

/// Tuning divisor of the [`RoundStrategy::Auto`] switch: a round runs dense
/// when `|F_t| + vol(F_t) ≥ (n + 2m) / DENSE_SWITCH_DIVISOR`, where `F_t` is
/// the pending frontier and `vol` sums degrees. The sparse path costs
/// several times more per touched edge than the dense sweep's streaming
/// recount (frontier sort, scattered counter deltas, dirty-queue churn), so
/// the crossover sits well below `|F_t| ≈ n`; 8 was tuned on the
/// `exp_scale` G(n, 8/n) family.
pub const DENSE_SWITCH_DIVISOR: usize = 8;

/// Below this worklist size the parallel phases run on a single chunk
/// inline: spawning threads for a few hundred vertices costs more than the
/// work itself, and the late stabilization tail would otherwise pay a
/// spawn-join round trip per (near-empty) round. Results are unaffected —
/// counter-based randomness does not depend on the partition.
pub(crate) const PAR_WORK_THRESHOLD: usize = 2_048;

/// Splits `len` items into at most `threads` contiguous chunk bounds, or a
/// single chunk when `len` is below [`PAR_WORK_THRESHOLD`]. Returns the
/// `(start, end)` pairs, all non-empty.
pub(crate) fn chunk_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = if len < PAR_WORK_THRESHOLD {
        1
    } else {
        threads.max(1)
    };
    let chunks = threads.min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Target chunk multiplicity for the work-stealing sparse phases: each
/// worker's deque starts with about this many chunks, so a worker that drew
/// light chunks has something to steal from a worker that drew the hubs.
pub(crate) const STEAL_CHUNKS_PER_THREAD: usize = 4;

/// Minimum chunk size for the work-stealing phases: below this, per-chunk
/// claim overhead (one CAS) stops being noise.
pub(crate) const STEAL_MIN_CHUNK: usize = 512;

/// Splits `len` worklist items into `(start, end)` chunks for a
/// work-stealing phase: about [`STEAL_CHUNKS_PER_THREAD`] chunks per thread,
/// none smaller than [`STEAL_MIN_CHUNK`], and a single chunk below
/// [`PAR_WORK_THRESHOLD`] (same inline cutoff as [`chunk_bounds`]).
pub(crate) fn steal_chunk_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    if len < PAR_WORK_THRESHOLD || threads <= 1 {
        return vec![(0, len)];
    }
    let want = threads * STEAL_CHUNKS_PER_THREAD;
    let chunks = want.min(len / STEAL_MIN_CHUNK).max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_helpers() {
        assert_eq!(ExecutionMode::Sequential.threads(), 1);
        assert_eq!(ExecutionMode::Parallel { threads: 4 }.threads(), 4);
        // threads = 0 auto-detects cores (at least one).
        assert!(ExecutionMode::Parallel { threads: 0 }.threads() >= 1);
        assert_eq!(
            ExecutionMode::Parallel { threads: 0 }.threads(),
            std::thread::available_parallelism().map_or(1, |t| t.get())
        );
        assert!(!ExecutionMode::Sequential.is_parallel());
        assert!(ExecutionMode::Parallel { threads: 2 }.is_parallel());
        assert_eq!(ExecutionMode::default(), ExecutionMode::Sequential);
        assert_eq!(ExecutionMode::Sequential.label(), "sequential");
        assert_eq!(ExecutionMode::Parallel { threads: 8 }.label(), "parallel");
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for &(len, threads) in &[
            (0usize, 4usize),
            (1, 4),
            (PAR_WORK_THRESHOLD - 1, 8),
            (PAR_WORK_THRESHOLD, 8),
            (10_001, 3),
            (8, 16),
        ] {
            let bounds = chunk_bounds(len, threads);
            if len == 0 {
                assert!(bounds.is_empty() || bounds == vec![(0, 0)]);
                continue;
            }
            assert_eq!(bounds.first().unwrap().0, 0);
            assert_eq!(bounds.last().unwrap().1, len);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].1 > w[0].0);
            }
            if len < PAR_WORK_THRESHOLD {
                assert_eq!(bounds.len(), 1, "small worklists stay on one chunk");
            } else {
                assert!(bounds.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn validate_rejects_absurd_thread_counts() {
        assert!(ExecutionMode::Sequential.validate().is_ok());
        assert!(ExecutionMode::Parallel { threads: 0 }.validate().is_ok());
        assert!(ExecutionMode::Parallel { threads: 8 }.validate().is_ok());
        assert!(ExecutionMode::Parallel {
            threads: MAX_THREADS
        }
        .validate()
        .is_ok());
        let err = ExecutionMode::Parallel {
            threads: MAX_THREADS + 1,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("exceeds"), "unexpected message: {err}");
    }

    #[test]
    fn steal_chunk_bounds_cover_exactly() {
        for &(len, threads) in &[
            (0usize, 4usize),
            (PAR_WORK_THRESHOLD - 1, 8),
            (PAR_WORK_THRESHOLD, 8),
            (100_000, 4),
            (3_000, 2),
            (1_000_000, 8),
        ] {
            let bounds = steal_chunk_bounds(len, threads);
            if len == 0 {
                assert!(bounds.is_empty());
                continue;
            }
            assert_eq!(bounds.first().unwrap().0, 0);
            assert_eq!(bounds.last().unwrap().1, len);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].1 > w[0].0);
            }
            if len < PAR_WORK_THRESHOLD {
                assert_eq!(bounds.len(), 1, "small worklists stay on one chunk");
            } else {
                assert!(bounds.len() <= threads * STEAL_CHUNKS_PER_THREAD);
                // No chunk under the floor unless the whole list is tiny.
                for &(s, e) in &bounds {
                    assert!(e - s >= STEAL_MIN_CHUNK.min(len));
                }
            }
        }
    }

    #[test]
    fn strategy_labels_parse_and_round_trip() {
        assert_eq!(RoundStrategy::default(), RoundStrategy::Auto);
        for strategy in [
            RoundStrategy::Auto,
            RoundStrategy::Sparse,
            RoundStrategy::Dense,
        ] {
            assert_eq!(RoundStrategy::parse(strategy.label()), Some(strategy));
            assert_eq!(
                RoundStrategy::parse(&strategy.label().to_uppercase()),
                Some(strategy)
            );
            let json = serde_json::to_string(&strategy).unwrap();
            assert_eq!(json, format!("\"{}\"", strategy.label()));
            let back: RoundStrategy = serde_json::from_str(&json).unwrap();
            assert_eq!(strategy, back);
        }
        assert_eq!(RoundStrategy::parse("bogus"), None);
        assert!(serde_json::from_str::<RoundStrategy>("\"bogus\"").is_err());
        assert!(serde_json::from_str::<RoundStrategy>("3").is_err());
    }

    #[test]
    fn mode_round_trips_through_json() {
        // Exercised through the serde stand-in used by ExperimentSpec.
        let modes = [
            ExecutionMode::Sequential,
            ExecutionMode::Parallel { threads: 8 },
        ];
        for mode in modes {
            let json = serde_json::to_string(&mode).unwrap();
            let back: ExecutionMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back);
        }
    }
}
