//! **Counter-based per-vertex randomness**: every random value is a pure
//! function of `(run_seed, vertex, round, draw_index)`.
//!
//! The paper's processes are synchronous *parallel* updates — each vertex
//! flips its own coins, independently of every other vertex. A single
//! sequential RNG stream (the `rand_chacha` stream the sequential engine
//! uses) forces an artificial total order on those coin flips: draws must
//! happen in ascending vertex id or the run is not reproducible, which in
//! turn serializes the whole round. [`CounterRng`] removes the order
//! dependency: the value of vertex `u`'s coin in round `t` is
//!
//! ```text
//! word(u, t, i) = philox(key(seed), u, t, i)
//! ```
//!
//! a keyed [Philox]-style block function evaluated on demand, so any thread
//! can compute any vertex's randomness at any time and the result is
//! **bit-identical for every thread count** — the determinism contract the
//! parallel engine is built on.
//!
//! The mixing function is a weakened Philox-2x64 (6 rounds of the
//! multiply-hi/lo bijection with the Weyl key schedule): not a
//! cryptographic PRF, but far beyond the statistical quality the MIS
//! processes need, and ~1 multiply-chain per draw. Quality is exercised by
//! the statistical sanity tests below and, indirectly, by every
//! stabilization test that runs in parallel mode.
//!
//! [Philox]: https://www.thesalmons.org/john/random123/papers/random123sc11.pdf

use rand::RngCore;

/// Draw index used for the per-round state coin of the MIS processes.
pub const DRAW_STATE: u64 = 0;
/// Draw index used by the randomized logarithmic switch sub-process.
pub const DRAW_SWITCH: u64 = 1;
/// Draw index used by Byzantine adversary strategies ([`crate::byzantine`]):
/// adversarial overrides must not perturb the protocol's own draw axes, or a
/// Byzantine run would change the honest vertices' coins.
pub const DRAW_BYZANTINE: u64 = 2;

/// Philox multiplication constant (`PHILOX_M2x64_0`).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Weyl sequence increment for the key schedule (golden-ratio constant).
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
/// Number of Philox rounds. The reference generator uses 10; 6 already
/// passes the statistical batteries that matter at simulation quality.
const PHILOX_ROUNDS: u32 = 6;

/// SplitMix64 finalizer, used to expand the user seed into a key.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based keyed RNG: random words are pure functions of
/// `(run_seed, vertex, round, draw_index)`, independent of evaluation order
/// and thread count.
///
/// # Example
///
/// ```
/// use mis_core::counter_rng::CounterRng;
///
/// let rng = CounterRng::new(42);
/// // The same coordinates always give the same word, any order, any thread.
/// assert_eq!(rng.word(7, 3, 0), rng.word(7, 3, 0));
/// assert_ne!(rng.word(7, 3, 0), rng.word(8, 3, 0));
/// let p_half = (0..1000).filter(|&u| rng.gen_bool(0.5, u, 0, 0)).count();
/// assert!((400..600).contains(&p_half));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Creates the generator for one run, expanding `seed` with SplitMix64
    /// so that nearby seeds produce unrelated keys.
    pub fn new(seed: u64) -> Self {
        CounterRng {
            key: splitmix64(seed),
        }
    }

    /// The random 64-bit word at coordinates `(vertex, round, draw)`.
    ///
    /// `draw` distinguishes independent draws of the same vertex in the same
    /// round (e.g. [`DRAW_STATE`] vs [`DRAW_SWITCH`]); it must be below 256,
    /// which is checked in debug builds only.
    #[inline]
    pub fn word(&self, vertex: u64, round: u64, draw: u64) -> u64 {
        debug_assert!(draw < 256, "draw index {draw} out of range");
        // Counter block: (vertex, round·256 + draw). Rounds stay far below
        // 2^56 in any realistic run, so the packing is collision-free.
        let mut x0 = vertex;
        let mut x1 = (round << 8) | draw;
        let mut k = self.key;
        for _ in 0..PHILOX_ROUNDS {
            let prod = u128::from(x0) * u128::from(PHILOX_M);
            let hi = (prod >> 64) as u64;
            let lo = prod as u64;
            x0 = hi ^ k ^ x1;
            x1 = lo;
            k = k.wrapping_add(PHILOX_W);
        }
        x0 ^ x1
    }

    /// A Bernoulli draw with success probability `p` at the given
    /// coordinates — the counter-based analogue of `Rng::gen_bool`, using
    /// the same 53-bit comparison as the vendored `rand`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&self, p: f64, vertex: u64, round: u64, draw: u64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} not in [0, 1]"
        );
        ((self.word(vertex, round, draw) >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// A fair coin at the given coordinates.
    #[inline]
    pub fn coin(&self, vertex: u64, round: u64, draw: u64) -> bool {
        self.word(vertex, round, draw) & 1 == 1
    }

    /// A sequential [`RngCore`] view over the draw axis of one
    /// `(vertex, round)` coordinate, for code written against the vendored
    /// rand API. Each `next_u64` consumes one draw index.
    pub fn stream(&self, vertex: u64, round: u64) -> CounterStream {
        CounterStream {
            rng: *self,
            vertex,
            round,
            draw: 0,
        }
    }
}

/// Sequential [`RngCore`] adapter over one `(vertex, round)` coordinate of a
/// [`CounterRng`]; see [`CounterRng::stream`].
#[derive(Debug, Clone)]
pub struct CounterStream {
    rng: CounterRng,
    vertex: u64,
    round: u64,
    draw: u64,
}

impl RngCore for CounterStream {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let word = self.rng.word(self.vertex, self.round, self.draw);
        self.draw += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn pure_function_of_coordinates() {
        let a = CounterRng::new(9);
        let b = CounterRng::new(9);
        for v in 0..50u64 {
            for t in 0..10u64 {
                assert_eq!(a.word(v, t, 0), b.word(v, t, 0));
                assert_eq!(a.word(v, t, 1), b.word(v, t, 1));
            }
        }
    }

    #[test]
    fn coordinates_decorrelate() {
        let rng = CounterRng::new(1);
        let base = rng.word(100, 100, 0);
        assert_ne!(base, rng.word(101, 100, 0), "vertex must matter");
        assert_ne!(base, rng.word(100, 101, 0), "round must matter");
        assert_ne!(base, rng.word(100, 100, 1), "draw must matter");
        assert_ne!(
            base,
            CounterRng::new(2).word(100, 100, 0),
            "seed must matter"
        );
    }

    #[test]
    fn bits_are_balanced() {
        // Bit balance over a structured (worst-case-ish) coordinate grid:
        // low-entropy counters are exactly what a weak mixer fails on.
        let rng = CounterRng::new(0);
        let mut ones = 0u64;
        let samples = 1u64 << 14;
        for v in 0..samples {
            ones += u64::from(rng.word(v, v % 17, v % 2).count_ones());
        }
        let frac = ones as f64 / (samples * 64) as f64;
        assert!((0.49..0.51).contains(&frac), "one-bit fraction {frac}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let rng = CounterRng::new(33);
        for &p in &[0.0, 0.25, 0.5, 1.0 / 128.0, 1.0] {
            let hits = (0..20_000u64).filter(|&v| rng.gen_bool(p, v, 3, 1)).count();
            let frac = hits as f64 / 20_000.0;
            assert!((frac - p).abs() < 0.02, "p = {p}: observed fraction {frac}");
        }
    }

    #[test]
    fn avalanche_on_adjacent_vertices() {
        // Flipping one input bit should flip ~half the output bits.
        let rng = CounterRng::new(7);
        let mut total_flips = 0u32;
        for v in 0..512u64 {
            total_flips += (rng.word(v, 5, 0) ^ rng.word(v ^ 1, 5, 0)).count_ones();
        }
        let mean = f64::from(total_flips) / 512.0;
        assert!((24.0..40.0).contains(&mean), "mean flipped bits {mean}");
    }

    #[test]
    fn stream_adapter_walks_the_draw_axis() {
        let rng = CounterRng::new(4);
        let mut s = rng.stream(11, 2);
        assert_eq!(s.next_u64(), rng.word(11, 2, 0));
        assert_eq!(s.next_u64(), rng.word(11, 2, 1));
        // The rand extension trait works on top of the adapter.
        let x: usize = rng.stream(11, 2).gen_range(0..10);
        assert!(x < 10);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn invalid_probability_panics() {
        CounterRng::new(0).gen_bool(1.5, 0, 0, 0);
    }
}
