use std::error::Error;
use std::fmt;

use mis_graph::VertexSet;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Error returned by [`Process::run_to_stabilization`] when the process did
/// not stabilize within the allowed number of rounds.
///
/// All processes in this crate stabilize with probability 1, so hitting this
/// error in practice means either the round budget was too small for the
/// graph or the process is being run on an adversarially chosen budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilizationTimeout {
    /// Number of rounds executed before giving up.
    pub rounds_executed: usize,
}

impl fmt::Display for StabilizationTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process did not stabilize within {} rounds",
            self.rounds_executed
        )
    }
}

impl Error for StabilizationTimeout {}

/// Per-round summary of the vertex partition maintained by a process, using
/// the notation of Section 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StateCounts {
    /// `|B_t|` — vertices currently black.
    pub black: usize,
    /// `|W_t|` (plus gray vertices in the 3-color process) — vertices not black.
    pub non_black: usize,
    /// `|A_t|` — active vertices (those that will re-randomize next round).
    pub active: usize,
    /// `|I_t|` — stable black vertices (black with no black neighbor).
    pub stable_black: usize,
    /// `|V_t|` — vertices that are not yet stable.
    pub unstable: usize,
}

/// A synchronous, self-stabilizing graph process computing an MIS.
///
/// Implementations update all vertex states in parallel each [`step`]
/// (Section 2 of the paper) and expose the evolving vertex partitions that
/// the analysis reasons about. A process is **stabilized** when every vertex
/// is stable, at which point the set of black vertices is a maximal
/// independent set of the underlying graph and no state changes any more.
///
/// # Per-round complexity contract
///
/// The processes of this crate execute rounds through the incremental
/// [`engine`](crate::engine): [`step`] costs `O(|A_t| + vol(A_t))` — the
/// number of frontier vertices plus the degree sum of the vertices that
/// changed — **not** `O(n + m)`, and [`is_stabilized`] and [`counts`] are
/// `O(1)` reads of cached counters. Once a region of the graph is quiet, no
/// work happens there; a fully stabilized 2-state instance steps in
/// (near-)constant time. (The 3-color process's *color* update obeys the
/// same bound, but its logarithmic-switch sub-process is a phase clock that
/// advances every vertex every round, so a 3-color step stays `O(n)`; the
/// 3-state process keeps its stable black vertices alternating by
/// definition, so its steady state costs `O(|I_t| + vol(I_t))`.) The
/// set-returning accessors ([`black_set`], [`active_set`], …) materialize a
/// bitset and remain `O(n)`.
///
/// [`step`]: Process::step
/// [`is_stabilized`]: Process::is_stabilized
/// [`counts`]: Process::counts
/// [`black_set`]: Process::black_set
/// [`active_set`]: Process::active_set
pub trait Process {
    /// Number of vertices of the underlying graph.
    fn n(&self) -> usize;

    /// Number of rounds executed so far (the `t` of the paper; 0 initially).
    fn round(&self) -> usize;

    /// Executes one synchronous round, updating every vertex in parallel.
    fn step(&mut self, rng: &mut dyn RngCore);

    /// Returns `true` if every vertex is stable (the black set is an MIS and
    /// no state will ever change again).
    fn is_stabilized(&self) -> bool;

    /// The current set of black vertices `B_t`.
    fn black_set(&self) -> VertexSet;

    /// The current set of active vertices `A_t` (vertices that will draw a
    /// random state in the next round).
    fn active_set(&self) -> VertexSet;

    /// The current set of stable black vertices `I_t` (black vertices with no
    /// black neighbor). `I_t` is always an independent set and a subset of
    /// the final MIS.
    fn stable_black_set(&self) -> VertexSet;

    /// The current set of non-stable vertices `V_t = V \ N⁺(I_t)`.
    fn unstable_set(&self) -> VertexSet;

    /// Aggregate counts of the current partition.
    fn counts(&self) -> StateCounts;

    /// Number of distinct states each vertex can be in (2, 3, or 18 for the
    /// processes of the paper). This is the "few states" headline metric.
    fn states_per_vertex(&self) -> usize;

    /// Total number of random bits drawn so far across all vertices, used by
    /// the baseline-comparison experiments ("constant random bits per round").
    fn random_bits_used(&self) -> u64;

    /// Runs the process until it stabilizes, executing at most `max_rounds`
    /// additional rounds.
    ///
    /// Returns the total number of rounds executed so far (i.e. the
    /// stabilization time when starting from round 0).
    ///
    /// # Errors
    ///
    /// Returns [`StabilizationTimeout`] if the process has not stabilized
    /// after `max_rounds` additional rounds.
    fn run_to_stabilization(
        &mut self,
        rng: &mut dyn RngCore,
        max_rounds: usize,
    ) -> Result<usize, StabilizationTimeout> {
        for _ in 0..max_rounds {
            if self.is_stabilized() {
                return Ok(self.round());
            }
            self.step(rng);
        }
        if self.is_stabilized() {
            Ok(self.round())
        } else {
            Err(StabilizationTimeout {
                rounds_executed: self.round(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_error_displays_round_count() {
        let e = StabilizationTimeout {
            rounds_executed: 42,
        };
        assert!(e.to_string().contains("42"));
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<StabilizationTimeout>();
    }

    #[test]
    fn state_counts_default_is_zero() {
        let c = StateCounts::default();
        assert_eq!(
            c.black + c.non_black + c.active + c.stable_black + c.unstable,
            0
        );
    }
}
