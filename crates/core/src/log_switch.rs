use std::sync::Arc;

use mis_graph::{Graph, VertexId};
use rand::{Rng, RngCore};

use crate::counter_rng::{CounterRng, DRAW_SWITCH};
use crate::exec::chunk_bounds;
use crate::init::InitStrategy;
use crate::mutation::{GraphRef, MutationError};

/// Default value of the switch probability parameter `ζ`.
///
/// The paper instantiates the 3-color process with `a = 512` and `ζ = 4/a =
/// 2⁻⁷` (Definition 28 and Section 5.2), so the switch needs at most 7 random
/// bits per round per vertex.
pub const DEFAULT_ZETA: f64 = 1.0 / 128.0;

/// A *logarithmic switch* process (Definition 25): a sub-process that outputs
/// an `on`/`off` value per vertex per round, gating the gray→white transition
/// of the 3-color MIS process.
///
/// The abstract properties an `(a, b)`-switch should satisfy are:
///
/// * **(S1)** every run of consecutive `off` values has length at most
///   `a ln n`;
/// * **(S2)** if `diam(G) ≤ 2`, after a warm-up every `off`-run has length at
///   least `(a/6) ln n`;
/// * **(S3)** if `diam(G) ≤ 2`, after a constant warm-up every `on`-run has
///   length at most `b`.
///
/// [`RandomizedLogSwitch`] satisfies them w.h.p. (Lemma 27);
/// [`FixedPeriodSwitch`] is a deterministic oracle used for tests and
/// ablations.
///
/// `Sync` is a supertrait so the 3-color process's parallel decide phase
/// can read `is_on` from multiple threads.
pub trait SwitchProcess: Sync {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// Executes one synchronous round of the switch.
    fn step(&mut self, rng: &mut dyn RngCore);

    /// Executes one synchronous round with counter-based randomness: every
    /// coin is the pure function `counter(vertex, round, DRAW_SWITCH)` of
    /// the switch's own round number, so the result is independent of
    /// evaluation order and `threads`. The level update is data-parallel
    /// over vertex ranges.
    fn step_counter(&mut self, counter: &CounterRng, threads: usize);

    /// The switch output `σ_t(u)` for the current round: `true` means `on`.
    fn is_on(&self, u: VertexId) -> bool;

    /// Number of distinct states the switch keeps per vertex.
    fn states_per_vertex(&self) -> usize;

    /// Total random bits drawn so far.
    fn random_bits_used(&self) -> u64;

    /// Rebinds the switch to a mutated graph (same vertex ids, possibly
    /// more of them — topology mutations never renumber). The parent
    /// process passes the **same** `Arc` it adopted, so both sub-processes
    /// share one graph instance. Per-vertex switch state for pre-existing
    /// vertices must be preserved; joined vertices may start at any valid
    /// state (the switch is self-stabilizing).
    ///
    /// The default declines with [`MutationError::Unsupported`], leaving
    /// the switch untouched; switches that can follow topology changes
    /// override it.
    fn rebind_graph(&mut self, graph: &Arc<Graph>) -> Result<(), MutationError> {
        let _ = graph;
        Err(MutationError::Unsupported)
    }
}

/// The **randomized logarithmic switch** of Definition 26.
///
/// Each vertex keeps a *level* in `{0, …, 5}`. In each round a vertex at
/// level 5 draws a biased coin (`P[reset] = ζ`); a vertex resets to level 5
/// if it is at level 0 or if it is at level 5 and the coin did *not* fire;
/// otherwise it moves to `max{level(v) : v ∈ N⁺(u)} − 1`. The switch output
/// is `on` when the level is at most 2 and `off` otherwise.
///
/// The core mechanism is the `RandPhase` phase clock of Emek & Keren (2021)
/// for diameter bound `D = 3`, but — as the paper stresses — it is used here
/// as a local, non-synchronized counter, and is run on graphs of arbitrary
/// unknown diameter.
///
/// # Example
///
/// ```
/// use mis_core::{RandomizedLogSwitch, SwitchProcess, DEFAULT_ZETA, init::InitStrategy};
/// use mis_graph::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let g = generators::complete(50);
/// let mut sw = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, DEFAULT_ZETA, &mut rng);
/// for _ in 0..100 { sw.step(&mut rng); }
/// let _on = sw.is_on(0);
/// ```
#[derive(Debug, Clone)]
pub struct RandomizedLogSwitch<'g> {
    graph: GraphRef<'g>,
    levels: Vec<u8>,
    next: Vec<u8>,
    zeta: f64,
    round: usize,
    random_bits: u64,
}

impl<'g> RandomizedLogSwitch<'g> {
    /// Creates the switch with an explicit initial level vector.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != graph.n()`, any level exceeds 5, or
    /// `zeta` is not in `(0, 1)`.
    pub fn new(graph: &'g Graph, levels: Vec<u8>, zeta: f64) -> Self {
        assert_eq!(
            levels.len(),
            graph.n(),
            "initial level vector length must equal the number of vertices"
        );
        assert!(levels.iter().all(|&l| l <= 5), "levels must be in 0..=5");
        assert!(
            zeta > 0.0 && zeta < 1.0,
            "zeta must be in (0, 1), got {zeta}"
        );
        RandomizedLogSwitch {
            next: levels.clone(),
            graph: GraphRef::Borrowed(graph),
            levels,
            zeta,
            round: 0,
            random_bits: 0,
        }
    }

    /// Creates the switch with levels drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(
        graph: &'g Graph,
        init: InitStrategy,
        zeta: f64,
        rng: &mut R,
    ) -> Self {
        Self::new(graph, init.switch_levels(graph.n(), rng), zeta)
    }

    /// Current level (`0..=5`) of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn level(&self, u: VertexId) -> u8 {
        self.levels[u]
    }

    /// The switch probability parameter `ζ`.
    pub fn zeta(&self) -> f64 {
        self.zeta
    }

    /// Number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Overwrites the level of one vertex (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `level > 5`.
    pub fn set_level(&mut self, u: VertexId, level: u8) {
        assert!(level <= 5, "levels must be in 0..=5");
        self.levels[u] = level;
    }
}

impl SwitchProcess for RandomizedLogSwitch<'_> {
    fn n(&self) -> usize {
        self.graph.get().n()
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        for u in self.graph.get().vertices() {
            let lvl = self.levels[u];
            let reset = if lvl == 5 {
                // b = 0 with probability ζ; b = 1 keeps the vertex at level 5.
                self.random_bits += 7; // ζ = 2⁻⁷ needs at most 7 bits
                !rng.gen_bool(self.zeta)
            } else {
                false
            };
            self.next[u] = if reset || lvl == 0 {
                5
            } else {
                let max_nbr = self
                    .graph
                    .get()
                    .neighbors(u)
                    .iter()
                    .map(|v| self.levels[v])
                    .max()
                    .unwrap_or(0)
                    .max(lvl);
                max_nbr - 1
            };
        }
        std::mem::swap(&mut self.levels, &mut self.next);
        self.round += 1;
    }

    fn step_counter(&mut self, counter: &CounterRng, threads: usize) {
        let round = self.round as u64;
        let zeta = self.zeta;
        let bounds = chunk_bounds(self.n(), threads);
        let total_draws = {
            let levels = &self.levels;
            let graph = self.graph.get();
            let counter = *counter;
            let advance = |lo: usize, chunk: &mut [u8]| -> u64 {
                let mut draws = 0u64;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let u = lo + i;
                    let lvl = levels[u];
                    let reset = if lvl == 5 {
                        draws += 7; // ζ = 2⁻⁷ needs at most 7 bits
                        !counter.gen_bool(zeta, u as u64, round, DRAW_SWITCH)
                    } else {
                        false
                    };
                    *slot = if reset || lvl == 0 {
                        5
                    } else {
                        let max_nbr = graph
                            .neighbors(u)
                            .iter()
                            .map(|v| levels[v])
                            .max()
                            .unwrap_or(0)
                            .max(lvl);
                        max_nbr - 1
                    };
                }
                draws
            };
            if bounds.len() <= 1 {
                bounds
                    .first()
                    .map_or(0, |&(lo, hi)| advance(lo, &mut self.next[lo..hi]))
            } else {
                // Hand each persistent-pool participant its disjoint
                // `(offset, &mut chunk)` pair through a per-slot mutex —
                // exclusive writes without `unsafe` under the crate's
                // `forbid(unsafe_code)`.
                use std::sync::Mutex;
                let mut rest: &mut [u8] = &mut self.next;
                let mut slots = Vec::with_capacity(bounds.len());
                for &(lo, hi) in &bounds {
                    let (chunk, tail) = rest.split_at_mut(hi - lo);
                    rest = tail;
                    slots.push(Mutex::new(Some((lo, chunk))));
                }
                let pool = rayon::global_pool(bounds.len());
                pool.broadcast(|ctx| {
                    slots
                        .get(ctx.index())
                        .and_then(|s| s.lock().unwrap().take())
                        .map_or(0u64, |(lo, chunk)| advance(lo, chunk))
                })
                .into_iter()
                .sum()
            }
        };
        self.random_bits += total_draws;
        std::mem::swap(&mut self.levels, &mut self.next);
        self.round += 1;
    }

    fn is_on(&self, u: VertexId) -> bool {
        self.levels[u] <= 2
    }

    fn states_per_vertex(&self) -> usize {
        6
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }

    fn rebind_graph(&mut self, graph: &Arc<Graph>) -> Result<(), MutationError> {
        // Joined vertices start at level 5 (the waiting level, and the
        // state a level-0 vertex resets to) — any level in 0..=5 is valid
        // since the switch is self-stabilizing, but 5 keeps their output
        // `off` until the clock synchronizes them.
        let new_n = graph.n();
        self.levels.resize(new_n, 5);
        self.next.resize(new_n, 5);
        self.graph = GraphRef::Owned(Arc::clone(graph));
        Ok(())
    }
}

/// A deterministic oracle switch used for tests and ablations: all vertices
/// share a global clock that is `on` for `on_rounds` rounds and then `off`
/// for `off_rounds` rounds, repeating.
///
/// It trivially satisfies the `(a, b)`-switch contract with
/// `a ln n = off_rounds` and `b = on_rounds`, which makes it useful for
/// separating "the switch misbehaves" from "the 3-color dynamics misbehave"
/// in tests.
#[derive(Debug, Clone)]
pub struct FixedPeriodSwitch {
    n: usize,
    on_rounds: usize,
    off_rounds: usize,
    round: usize,
}

impl FixedPeriodSwitch {
    /// Creates the oracle switch.
    ///
    /// # Panics
    ///
    /// Panics if `on_rounds + off_rounds == 0`.
    pub fn new(n: usize, on_rounds: usize, off_rounds: usize) -> Self {
        assert!(on_rounds + off_rounds > 0, "the period must be positive");
        FixedPeriodSwitch {
            n,
            on_rounds,
            off_rounds,
            round: 0,
        }
    }
}

impl SwitchProcess for FixedPeriodSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn step(&mut self, _rng: &mut dyn RngCore) {
        self.round += 1;
    }

    fn step_counter(&mut self, _counter: &CounterRng, _threads: usize) {
        // The oracle switch is deterministic: counter mode is the same step.
        self.round += 1;
    }

    fn is_on(&self, _u: VertexId) -> bool {
        self.round % (self.on_rounds + self.off_rounds) < self.on_rounds
    }

    fn states_per_vertex(&self) -> usize {
        self.on_rounds + self.off_rounds
    }

    fn random_bits_used(&self) -> u64 {
        0
    }

    fn rebind_graph(&mut self, graph: &Arc<Graph>) -> Result<(), MutationError> {
        // The oracle switch reads no adjacency; it only tracks the vertex
        // count (its global clock is unaffected by topology).
        self.n = graph.n();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Records, for one vertex, the lengths of maximal on-runs and off-runs
    /// over a simulation of `rounds` rounds (ignoring the final partial run).
    fn run_lengths(
        sw: &mut RandomizedLogSwitch<'_>,
        u: VertexId,
        rounds: usize,
        rng: &mut ChaCha8Rng,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut on_runs = Vec::new();
        let mut off_runs = Vec::new();
        let mut current_on = sw.is_on(u);
        let mut len = 1usize;
        for _ in 0..rounds {
            sw.step(rng);
            let now_on = sw.is_on(u);
            if now_on == current_on {
                len += 1;
            } else {
                if current_on {
                    on_runs.push(len);
                } else {
                    off_runs.push(len);
                }
                current_on = now_on;
                len = 1;
            }
        }
        (on_runs, off_runs)
    }

    #[test]
    #[should_panic(expected = "zeta must be in (0, 1)")]
    fn invalid_zeta_panics() {
        let g = generators::path(3);
        RandomizedLogSwitch::new(&g, vec![0; 3], 0.0);
    }

    #[test]
    #[should_panic(expected = "levels must be in 0..=5")]
    fn invalid_levels_panic() {
        let g = generators::path(3);
        RandomizedLogSwitch::new(&g, vec![0, 9, 0], DEFAULT_ZETA);
    }

    #[test]
    fn levels_stay_in_range_and_level0_resets() {
        let g = generators::star(20);
        let mut r = rng(1);
        let mut sw = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, DEFAULT_ZETA, &mut r);
        for _ in 0..500 {
            sw.step(&mut r);
            for u in g.vertices() {
                assert!(sw.level(u) <= 5);
            }
        }
        // A vertex forced to level 0 must be at level 5 after one step.
        sw.set_level(3, 0);
        sw.step(&mut r);
        assert_eq!(sw.level(3), 5);
    }

    /// Property (S1) of Lemma 27: off-runs are at most ~a ln n long.
    #[test]
    fn s1_off_runs_are_logarithmically_bounded() {
        let g = generators::complete(64);
        let n = g.n() as f64;
        let zeta = 1.0 / 16.0; // larger zeta keeps the test fast; a = 4/zeta
        let a = 4.0 / zeta;
        let mut r = rng(2);
        let mut sw = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, zeta, &mut r);
        let (_, off_runs) = run_lengths(&mut sw, 0, 4000, &mut r);
        assert!(!off_runs.is_empty());
        let max_off = off_runs.iter().copied().max().unwrap();
        assert!(
            (max_off as f64) <= a * n.ln() + 6.0,
            "off-run of length {max_off} exceeds a ln n = {}",
            a * n.ln()
        );
    }

    /// Properties (S2)/(S3): on a diameter-2 graph, after synchronization the
    /// on-runs are short (≤ 3) and the off-runs are long (≥ (a/6) ln n).
    #[test]
    fn s2_s3_on_diameter_two_graphs() {
        let g = generators::complete(64);
        let n = g.n() as f64;
        let zeta = 1.0 / 16.0;
        let a = 4.0 / zeta;
        let mut r = rng(3);
        let mut sw = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, zeta, &mut r);
        // Warm up past the synchronization point (t* + 2 ≤ 7 in the proof).
        for _ in 0..50 {
            sw.step(&mut r);
        }
        let (on_runs, off_runs) = run_lengths(&mut sw, 0, 4000, &mut r);
        assert!(!on_runs.is_empty() && !off_runs.is_empty());
        assert!(
            on_runs.iter().all(|&l| l <= 3),
            "on-runs must have length at most b = 3, got {on_runs:?}"
        );
        // Skip the first off-run, which may be a partial run started during warm-up.
        let min_off = off_runs.iter().skip(1).copied().min().unwrap_or(usize::MAX);
        assert!(
            (min_off as f64) >= a / 6.0 * n.ln() - 1.0,
            "off-run of length {min_off} is below (a/6) ln n = {}",
            a / 6.0 * n.ln()
        );
    }

    #[test]
    fn low_levels_are_synchronized_on_diameter_two_graphs() {
        // Lemma 27's proof: after a constant warm-up, whenever some vertex
        // reaches level 2, *all* vertices are at level 2 in that round, then
        // all at level 1, then all at level 0 (they only desynchronize while
        // waiting at level 5).
        let g = generators::complete(40);
        let mut r = rng(4);
        let mut sw = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, DEFAULT_ZETA, &mut r);
        for _ in 0..20 {
            sw.step(&mut r);
        }
        for _ in 0..2000 {
            sw.step(&mut r);
            if let Some(low) = g.vertices().map(|u| sw.level(u)).find(|&l| l <= 2) {
                assert!(
                    g.vertices().all(|u| sw.level(u) == low),
                    "a vertex reached level {low} while others lag behind"
                );
            }
        }
    }

    #[test]
    fn counter_step_is_thread_count_invariant() {
        // n above the parallel-work threshold so the chunking actually
        // differs between thread counts.
        let g = generators::path(5000);
        let mut r = rng(9);
        let base = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, 0.25, &mut r);
        let counter = CounterRng::new(5);
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut sw = base.clone();
            for _ in 0..40 {
                sw.step_counter(&counter, threads);
            }
            outputs.push((sw.levels.clone(), sw.random_bits_used(), sw.round()));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        // Counter rounds keep levels in range.
        assert!(outputs[0].0.iter().all(|&l| l <= 5));
    }

    #[test]
    fn fixed_period_switch_cycles() {
        let mut sw = FixedPeriodSwitch::new(5, 2, 3);
        let mut r = rng(0);
        let mut pattern = Vec::new();
        for _ in 0..10 {
            pattern.push(sw.is_on(0));
            sw.step(&mut r);
        }
        assert_eq!(
            pattern,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        assert_eq!(sw.states_per_vertex(), 5);
        assert_eq!(sw.random_bits_used(), 0);
        assert_eq!(sw.n(), 5);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        FixedPeriodSwitch::new(3, 0, 0);
    }
}
