//! **Byzantine adversaries**: vertices that never obey the protocol.
//!
//! Self-stabilization recovers from *transient* faults — arbitrary but
//! one-shot state corruption. The stronger adversary of
//! Cohen–Pirot–Pilard ("Self-stabilization and Byzantine tolerance for
//! maximal independent set") controls a fixed set `B` of vertices
//! *permanently*: in every round, after the honest vertices move, the
//! adversary rewrites the states of `B` however it likes. No algorithm can
//! stabilize `B` or its immediate surroundings, but their result is that
//! the MIS processes still stabilize **outside the 2-neighborhood of
//! `B`** — the containment-radius guarantee this module lets the harness
//! measure and the checker ([`mis_graph::mis_check::is_mis_outside`])
//! validate.
//!
//! The design mirrors the transient-fault seam:
//!
//! * [`Adversary`] decides, per `(vertex, round)`, which state an
//!   adversarial vertex displays. Implementations are **pure functions**
//!   of their coordinates (randomized strategies go through
//!   [`CounterRng`] on the dedicated [`DRAW_BYZANTINE`] axis), so a
//!   Byzantine run stays bit-identical across thread counts and never
//!   consumes the trial's sequential RNG stream.
//! * [`ByzantineOverlay`] applies an adversary to any registry
//!   [`Algorithm`] through the new
//!   [`set_byzantine_state`](Algorithm::set_byzantine_state) hook — the
//!   same packed-state override + engine delta-repair discipline that
//!   `inject_faults` and `apply_mutation` use — so every algorithm,
//!   including the comm-model adaptations, runs under attack without
//!   per-algorithm forks.
//!
//! The four built-in strategies ([`ByzantineStrategy`]) cover the
//! qualitatively different attack shapes: a dead node ([`Frozen`]), white
//! noise ([`Flipper`]), a resonant destabilizer ([`Oscillator`]), and a
//! counter-stressing liar ([`Spoofer`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

use mis_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};

use crate::algorithm::Algorithm;
use crate::counter_rng::{CounterRng, DRAW_BYZANTINE};

/// A Byzantine adversary: decides the state each adversarial vertex
/// displays in each round.
///
/// Implementations must be pure functions of `(vertex, round)` (plus the
/// seed baked in at construction): the overlay may re-evaluate any
/// coordinate at any time, and determinism across thread counts depends on
/// it. Randomness goes through [`CounterRng`] on the [`DRAW_BYZANTINE`]
/// axis, never through the trial's sequential stream.
pub trait Adversary: Send + Sync {
    /// The strategy's display name.
    fn name(&self) -> &'static str;

    /// Whether `vertex` displays **black** to its neighbors in `round`.
    fn displays_black(&self, vertex: VertexId, round: usize) -> bool;

    /// The state the vertex "really" holds, when the strategy
    /// distinguishes it from the displayed one (spoofing). When the two
    /// differ the overlay writes the internal state first and the
    /// displayed state second, forcing a state transition — and the
    /// corresponding counter delta-repair — every single round.
    fn internal_black(&self, vertex: VertexId, round: usize) -> bool {
        self.displays_black(vertex, round)
    }
}

/// Stuck forever in one arbitrary (per-vertex pseudo-random) state — the
/// crashed-node end of the Byzantine spectrum.
#[derive(Debug, Clone, Copy)]
pub struct Frozen {
    rng: CounterRng,
}

impl Frozen {
    /// A frozen adversary whose per-vertex stuck states are keyed by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Frozen {
            rng: CounterRng::new(seed),
        }
    }
}

impl Adversary for Frozen {
    fn name(&self) -> &'static str {
        "frozen"
    }

    fn displays_black(&self, vertex: VertexId, _round: usize) -> bool {
        self.rng.coin(vertex as u64, 0, DRAW_BYZANTINE)
    }
}

/// Re-randomizes every round: an independent fair coin per
/// `(vertex, round)` via the counter RNG, so the attack is bit-identical
/// across thread counts.
#[derive(Debug, Clone, Copy)]
pub struct Flipper {
    rng: CounterRng,
}

impl Flipper {
    /// A flipper adversary keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Flipper {
            rng: CounterRng::new(seed),
        }
    }
}

impl Adversary for Flipper {
    fn name(&self) -> &'static str {
        "flipper"
    }

    fn displays_black(&self, vertex: VertexId, round: usize) -> bool {
        self.rng.coin(vertex as u64, round as u64, DRAW_BYZANTINE)
    }
}

/// Alternates black/white deterministically every round — the
/// maximally-destabilizing periodic attack: neighbors that committed to
/// white because the Byzantine vertex was black see it turn white one
/// round later, and vice versa.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oscillator;

impl Adversary for Oscillator {
    fn name(&self) -> &'static str {
        "oscillator"
    }

    fn displays_black(&self, _vertex: VertexId, round: usize) -> bool {
        round % 2 == 0
    }
}

/// Reports **black** to its neighbors while internally holding **white**:
/// the overlay writes white-then-black every round, so the engine's
/// black/black1 neighbor counters absorb a full down-then-up delta-repair
/// per round per spoofing vertex — the counter-stress attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spoofer;

impl Adversary for Spoofer {
    fn name(&self) -> &'static str {
        "spoofer"
    }

    fn displays_black(&self, _vertex: VertexId, _round: usize) -> bool {
        true
    }

    fn internal_black(&self, _vertex: VertexId, _round: usize) -> bool {
        false
    }
}

/// The built-in adversary strategies, as a spec-friendly enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ByzantineStrategy {
    /// [`Frozen`]: stuck in one arbitrary state forever.
    Frozen,
    /// [`Flipper`]: fresh counter-RNG coin every round.
    Flipper,
    /// [`Oscillator`]: alternates black/white each round.
    Oscillator,
    /// [`Spoofer`]: displays black, internally white.
    Spoofer,
}

impl ByzantineStrategy {
    /// Every built-in strategy, for campaign sweeps.
    pub fn all() -> [ByzantineStrategy; 4] {
        [
            ByzantineStrategy::Frozen,
            ByzantineStrategy::Flipper,
            ByzantineStrategy::Oscillator,
            ByzantineStrategy::Spoofer,
        ]
    }

    /// Short label for tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            ByzantineStrategy::Frozen => "frozen",
            ByzantineStrategy::Flipper => "flipper",
            ByzantineStrategy::Oscillator => "oscillator",
            ByzantineStrategy::Spoofer => "spoofer",
        }
    }

    /// Builds the adversary, keying any randomized strategy by `seed`.
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            ByzantineStrategy::Frozen => Box::new(Frozen::new(seed)),
            ByzantineStrategy::Flipper => Box::new(Flipper::new(seed)),
            ByzantineStrategy::Oscillator => Box::new(Oscillator),
            ByzantineStrategy::Spoofer => Box::new(Spoofer),
        }
    }
}

impl fmt::Display for ByzantineStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Binds an [`Adversary`] to a fixed set of vertices and applies it to a
/// running [`Algorithm`].
///
/// The harness calls [`apply`](ByzantineOverlay::apply) once before the
/// first round and again after every step, re-overriding the adversarial
/// vertices' states through
/// [`Algorithm::set_byzantine_state`] — which delta-repairs the frontier
/// engine's black/black1 counters exactly like `apply_mutation`'s
/// state-carryover path, so the honest vertices' incremental bookkeeping
/// stays exact under attack.
pub struct ByzantineOverlay {
    adversary: Box<dyn Adversary>,
    strategy: ByzantineStrategy,
    /// Interior mutability so the set can be
    /// [re-sampled](ByzantineOverlay::resample_departed) under churn while
    /// the containment tracker holds a shared borrow of the overlay.
    vertices: RwLock<Vec<VertexId>>,
    /// Whether the adversary replaces victims that churn isolates.
    resample: bool,
    /// Draws replacement victims on the [`DRAW_BYZANTINE`] axis, keyed by
    /// the construction seed — never by the trial's sequential stream.
    rng: CounterRng,
    /// Monotone draw counter, so successive re-samples are independent.
    resample_nonce: AtomicU64,
}

impl ByzantineOverlay {
    /// An overlay running `strategy` (keyed by `seed`) on `vertices`.
    ///
    /// Vertices are sorted and deduplicated so the override order — and
    /// hence the sequential-mode RNG-free trajectory — is canonical.
    pub fn new(strategy: ByzantineStrategy, mut vertices: Vec<VertexId>, seed: u64) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        ByzantineOverlay {
            adversary: strategy.build(seed),
            strategy,
            vertices: RwLock::new(vertices),
            resample: false,
            rng: CounterRng::new(seed ^ 0xB12A_97A1_5EED_0001),
            resample_nonce: AtomicU64::new(0),
        }
    }

    /// Enables [victim re-sampling](ByzantineOverlay::resample_departed):
    /// when churn isolates an adversarial vertex, the adversary moves to a
    /// fresh victim instead of wasting its budget on a ghost.
    pub fn with_resample(mut self, resample: bool) -> Self {
        self.resample = resample;
        self
    }

    /// Whether this overlay re-samples departed victims.
    pub fn resamples(&self) -> bool {
        self.resample
    }

    /// The adversarial vertex set, sorted and deduplicated.
    pub fn vertices(&self) -> Vec<VertexId> {
        self.read_vertices().clone()
    }

    /// The strategy this overlay runs.
    pub fn strategy(&self) -> ByzantineStrategy {
        self.strategy
    }

    /// `true` if no vertex is adversarial (the overlay is then a no-op).
    pub fn is_empty(&self) -> bool {
        self.read_vertices().is_empty()
    }

    fn read_vertices(&self) -> std::sync::RwLockReadGuard<'_, Vec<VertexId>> {
        self.vertices.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-overrides every adversarial vertex's state for the algorithm's
    /// current round; returns how many override writes actually changed a
    /// state.
    ///
    /// Vertices that no longer exist (the population shrank under churn)
    /// are skipped: a departed Byzantine vertex simply stops attacking.
    pub fn apply(&self, alg: &mut dyn Algorithm) -> usize {
        let round = alg.round();
        let n = alg.n();
        let mut changed = 0;
        for &u in self.read_vertices().iter() {
            if u >= n {
                continue;
            }
            let displayed = self.adversary.displays_black(u, round);
            let internal = self.adversary.internal_black(u, round);
            if internal != displayed && alg.set_byzantine_state(u, internal) {
                changed += 1;
            }
            if alg.set_byzantine_state(u, displayed) {
                changed += 1;
            }
        }
        changed
    }

    /// Replaces every victim that `graph` shows as departed — out of range
    /// or fully detached (churn models leaving as detachment, so degree 0
    /// is departure) — with a fresh draw from the attached, non-adversarial
    /// population. Returns the number of victims moved. No-op unless
    /// [`with_resample`](ByzantineOverlay::with_resample) enabled it.
    ///
    /// Draws go through the counter RNG on the [`DRAW_BYZANTINE`] axis with
    /// a monotone nonce: the trajectory is a pure function of the
    /// construction seed and the sequence of calls, so trials stay
    /// reproducible and the honest RNG streams never shift.
    pub fn resample_departed(&self, graph: &Graph) -> usize {
        if !self.resample {
            return 0;
        }
        let n = graph.n();
        let mut vertices = self
            .vertices
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let departed: Vec<VertexId> = vertices
            .iter()
            .copied()
            .filter(|&u| u >= n || graph.degree(u) == 0)
            .collect();
        if departed.is_empty() {
            return 0;
        }
        vertices.retain(|u| !departed.contains(u));
        let mut moved = 0;
        for _ in &departed {
            let candidates: Vec<VertexId> = (0..n)
                .filter(|&u| graph.degree(u) > 0 && !vertices.contains(&u))
                .collect();
            let Some(&pick) = candidates.get({
                let nonce = self.resample_nonce.fetch_add(1, Ordering::SeqCst);
                (self.rng.word(nonce, 0, DRAW_BYZANTINE) % candidates.len().max(1) as u64) as usize
            }) else {
                break; // population exhausted: the adversary shrinks
            };
            vertices.push(pick);
            moved += 1;
        }
        vertices.sort_unstable();
        vertices.dedup();
        moved
    }
}

impl fmt::Debug for ByzantineOverlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByzantineOverlay")
            .field("strategy", &self.strategy)
            .field("vertices", &*self.read_vertices())
            .field("resample", &self.resample)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_pure_functions_of_coordinates() {
        for strategy in ByzantineStrategy::all() {
            let a = strategy.build(9);
            let b = strategy.build(9);
            for u in 0..64 {
                for t in 0..8 {
                    assert_eq!(
                        a.displays_black(u, t),
                        b.displays_black(u, t),
                        "{strategy} not reproducible at ({u}, {t})"
                    );
                    assert_eq!(
                        a.internal_black(u, t),
                        b.internal_black(u, t),
                        "{strategy} internal not reproducible at ({u}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_never_moves_flipper_does() {
        let frozen = Frozen::new(3);
        let flipper = Flipper::new(3);
        let mut flips = 0;
        for u in 0..32 {
            let f0 = frozen.displays_black(u, 0);
            for t in 1..50 {
                assert_eq!(frozen.displays_black(u, t), f0, "frozen moved");
                if flipper.displays_black(u, t) != flipper.displays_black(u, t - 1) {
                    flips += 1;
                }
            }
        }
        assert!(flips > 200, "flipper barely flips ({flips} transitions)");
    }

    #[test]
    fn oscillator_alternates_and_spoofer_lies() {
        let osc = Oscillator;
        assert!(osc.displays_black(5, 0));
        assert!(!osc.displays_black(5, 1));
        assert!(osc.displays_black(5, 2));
        assert_eq!(osc.internal_black(5, 0), osc.displays_black(5, 0));
        let spoof = Spoofer;
        for t in 0..4 {
            assert!(spoof.displays_black(0, t));
            assert!(!spoof.internal_black(0, t));
        }
    }

    #[test]
    fn strategy_labels_and_serde_roundtrip() {
        for s in ByzantineStrategy::all() {
            assert_eq!(s.build(0).name(), s.label());
            let json = serde_json::to_string(&s).unwrap();
            let back: ByzantineStrategy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
        let labels: std::collections::HashSet<_> =
            ByzantineStrategy::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn overlay_sorts_dedupes_and_reports_emptiness() {
        let o = ByzantineOverlay::new(ByzantineStrategy::Oscillator, vec![4, 1, 4, 2], 0);
        assert_eq!(o.vertices(), vec![1, 2, 4]);
        assert_eq!(o.strategy(), ByzantineStrategy::Oscillator);
        assert!(!o.is_empty());
        assert!(ByzantineOverlay::new(ByzantineStrategy::Frozen, vec![], 0).is_empty());
        let dbg = format!("{o:?}");
        assert!(dbg.contains("Oscillator"));
    }

    #[test]
    fn resample_replaces_departed_victims_deterministically() {
        // Path 0-1-2-3-4 plus isolated vertex 5: victims {1, 5} where 5 is
        // already departed (degree 0).
        let graph = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();

        // Without opting in, resampling is a no-op.
        let inert = ByzantineOverlay::new(ByzantineStrategy::Frozen, vec![1, 5], 9);
        assert_eq!(inert.resample_departed(&graph), 0);
        assert_eq!(inert.vertices(), vec![1, 5]);

        let adaptive =
            ByzantineOverlay::new(ByzantineStrategy::Frozen, vec![1, 5], 9).with_resample(true);
        assert!(adaptive.resamples());
        let moved = adaptive.resample_departed(&graph);
        assert_eq!(moved, 1);
        let after = adaptive.vertices();
        assert_eq!(after.len(), 2);
        assert!(after.contains(&1), "attached victim 1 must survive");
        assert!(!after.contains(&5), "isolated victim 5 must be replaced");
        for &u in &after {
            assert!(graph.degree(u) > 0, "replacement {u} must be attached");
        }

        // Same seed + same call sequence => same trajectory.
        let replay =
            ByzantineOverlay::new(ByzantineStrategy::Frozen, vec![1, 5], 9).with_resample(true);
        replay.resample_departed(&graph);
        assert_eq!(replay.vertices(), after);

        // Nothing departed => nothing moves.
        assert_eq!(adaptive.resample_departed(&graph), 0);
        assert_eq!(adaptive.vertices(), after);
    }

    #[test]
    fn resample_shrinks_when_population_is_exhausted() {
        // Two attached vertices, both adversarial; the third victim is out
        // of range. No honest attached candidate exists, so the adversary
        // loses the departed victim outright.
        let graph = Graph::from_edges(2, [(0, 1)]).unwrap();
        let o =
            ByzantineOverlay::new(ByzantineStrategy::Spoofer, vec![0, 1, 7], 3).with_resample(true);
        assert_eq!(o.resample_departed(&graph), 0);
        assert_eq!(o.vertices(), vec![0, 1]);
    }
}
