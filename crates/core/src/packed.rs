//! Bit-packed structure-of-arrays vertex state storage: **2 bits per
//! vertex**, 32 vertices per `u64` word.
//!
//! Every process of the paper has at most 3 (color) states per vertex, so a
//! byte-per-vertex `Vec<enum>` wastes 6 of its 8 bits and quadruples the
//! memory traffic of the round loop's state reads — which matters once `n`
//! reaches 10⁷ and the state vector alone would be 10 MB instead of 2.5 MB.
//! [`PackedStates`] stores the 2-bit state codes in `AtomicU64` words so the
//! parallel decide phase can write states of *distinct* vertices through
//! `&self` concurrently (word-level atomic RMWs on disjoint bit ranges
//! compose exactly); the sequential paths use the same storage uncontended.
//!
//! The mapping between a process's state enum and its 2-bit code is owned by
//! the process (see `code`/`from_code` on each state enum).

use std::sync::atomic::{AtomicU64, Ordering};

/// Vertices per 64-bit word (2 bits each).
const PER_WORD: usize = 32;

/// A fixed-length vector of 2-bit state codes backed by `AtomicU64` words.
///
/// Concurrent [`set`](PackedStates::set) calls for **distinct** vertices are
/// safe and exact; concurrent `set` calls for the *same* vertex are a data
/// race at the semantic level (last-writer-wins per RMW) and never happen in
/// the engine (each vertex is decided by exactly one thread).
#[derive(Debug, Default)]
pub struct PackedStates {
    words: Vec<AtomicU64>,
    n: usize,
}

impl PackedStates {
    /// Creates storage for `n` vertices, all at code 0.
    pub fn new(n: usize) -> Self {
        PackedStates {
            words: (0..n.div_ceil(PER_WORD))
                .map(|_| AtomicU64::new(0))
                .collect(),
            n,
        }
    }

    /// Builds the storage from an iterator of 2-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds 3.
    pub fn from_codes<I: IntoIterator<Item = u8>>(codes: I) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut n = 0usize;
        for code in codes {
            assert!(code <= 3, "state code {code} does not fit in 2 bits");
            if n % PER_WORD == 0 {
                words.push(0);
            }
            let shift = (n % PER_WORD) * 2;
            *words.last_mut().expect("word pushed above") |= u64::from(code) << shift;
            n += 1;
        }
        PackedStates {
            words: words.into_iter().map(AtomicU64::new).collect(),
            n,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The 2-bit code of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range — in debug builds always; in release
    /// builds only when `u` falls outside the allocated words (an in-word
    /// out-of-range index reads an unused, all-zero bit pair).
    #[inline]
    pub fn get(&self, u: usize) -> u8 {
        debug_assert!(u < self.n, "vertex {u} out of range (n = {})", self.n);
        let word = self.words[u / PER_WORD].load(Ordering::Relaxed);
        ((word >> ((u % PER_WORD) * 2)) & 0b11) as u8
    }

    /// Overwrites the 2-bit code of vertex `u`. Callable through `&self`
    /// concurrently for distinct vertices: the clear and set are two atomic
    /// RMWs that each touch only `u`'s bit pair.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `code > 3`.
    #[inline]
    pub fn set(&self, u: usize, code: u8) {
        debug_assert!(u < self.n, "vertex {u} out of range (n = {})", self.n);
        assert!(code <= 3, "state code {code} does not fit in 2 bits");
        let shift = (u % PER_WORD) * 2;
        let slot = &self.words[u / PER_WORD];
        slot.fetch_and(!(0b11u64 << shift), Ordering::Relaxed);
        if code != 0 {
            slot.fetch_or(u64::from(code) << shift, Ordering::Relaxed);
        }
    }

    /// Overwrites the 2-bit code of vertex `u` through `&mut self`: a plain
    /// load + store on the containing word instead of the two atomic RMWs of
    /// [`set`](Self::set), for the exclusive sequential round paths.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `code > 3`.
    #[inline]
    pub fn set_mut(&mut self, u: usize, code: u8) {
        debug_assert!(u < self.n, "vertex {u} out of range (n = {})", self.n);
        assert!(code <= 3, "state code {code} does not fit in 2 bits");
        let shift = (u % PER_WORD) * 2;
        let word = self.words[u / PER_WORD].get_mut();
        *word = (*word & !(0b11u64 << shift)) | (u64::from(code) << shift);
    }

    /// Decodes the whole vector through `f` into a `Vec` (an `O(n)`
    /// materialization, used by the `states()`-style accessors).
    pub fn decode<T>(&self, f: impl Fn(u8) -> T) -> Vec<T> {
        (0..self.n).map(|u| f(self.get(u))).collect()
    }

    /// Extends the vector to `new_n` vertices, all new slots at code 0
    /// (no-op if already that long) — topology growth support. The unused
    /// high bits of the last word are already zero, so only whole new words
    /// need allocating.
    pub fn grow(&mut self, new_n: usize) {
        if new_n <= self.n {
            return;
        }
        while self.words.len() < new_n.div_ceil(PER_WORD) {
            self.words.push(AtomicU64::new(0));
        }
        self.n = new_n;
    }
}

impl Clone for PackedStates {
    fn clone(&self) -> Self {
        PackedStates {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            n: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_codes() {
        let p = PackedStates::new(100);
        for u in 0..100 {
            p.set(u, (u % 4) as u8);
        }
        for u in 0..100 {
            assert_eq!(p.get(u), (u % 4) as u8, "vertex {u}");
        }
        // Overwrite with a different pattern, including back to zero.
        for u in 0..100 {
            p.set(u, ((u + 3) % 4) as u8);
        }
        for u in 0..100 {
            assert_eq!(p.get(u), ((u + 3) % 4) as u8, "vertex {u}");
        }
    }

    #[test]
    fn set_mut_matches_set() {
        let mut p = PackedStates::new(70);
        for u in 0..70 {
            p.set_mut(u, (u % 4) as u8);
        }
        for u in 0..70 {
            assert_eq!(p.get(u), (u % 4) as u8, "vertex {u}");
        }
        p.set_mut(3, 0);
        assert_eq!(p.get(3), 0);
        assert_eq!(p.get(2), 2, "neighboring bit pairs untouched");
    }

    #[test]
    fn from_codes_and_decode() {
        let codes = [0u8, 1, 2, 3, 3, 2, 1, 0, 1];
        let p = PackedStates::from_codes(codes.iter().copied());
        assert_eq!(p.len(), 9);
        assert!(!p.is_empty());
        assert_eq!(p.decode(|c| c), codes.to_vec());
        let q = p.clone();
        assert_eq!(q.decode(|c| c), codes.to_vec());
    }

    #[test]
    fn concurrent_disjoint_sets_are_exact() {
        // Hammer vertices that share words from multiple threads.
        let n = 4 * super::PER_WORD;
        let p = PackedStates::new(n);
        rayon::scope(|s| {
            for t in 0..4usize {
                let p = &p;
                s.spawn(move |_| {
                    for u in (t..n).step_by(4) {
                        p.set(u, ((u + t) % 4) as u8);
                    }
                });
            }
        });
        for u in 0..n {
            assert_eq!(p.get(u), ((u + u % 4) % 4) as u8, "vertex {u}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        PackedStates::new(3).get(3);
    }

    #[test]
    #[should_panic(expected = "does not fit in 2 bits")]
    fn oversized_code_panics() {
        PackedStates::new(3).set(0, 4);
    }
}
