//! The self-stabilizing MIS processes of Giakkoupis & Ziccardi (PODC 2023).
//!
//! This crate implements the paper's contribution:
//!
//! * [`TwoStateProcess`] — the **2-state MIS process** (Definition 4): each
//!   vertex is black or white; an "inconsistent" vertex (black with a black
//!   neighbor, or white with no black neighbor) re-randomizes its state each
//!   round with probability 1/2 per outcome.
//! * [`ThreeStateProcess`] — the **3-state MIS process** (Definition 5),
//!   suitable for the synchronous stone age model (no collision detection).
//! * [`RandomizedLogSwitch`] — the **randomized logarithmic switch**
//!   (Definition 26), a 6-level phase-clock-like sub-process whose on/off
//!   output satisfies properties (S1)–(S3) of Definition 25 w.h.p.
//! * [`ThreeColorProcess`] — the **3-color MIS process** (Definition 28),
//!   the 2-state process extended with a gray color whose gray→white
//!   transition is gated by a logarithmic switch; with the randomized switch
//!   it uses 3 × 6 = 18 states and stabilizes in polylog rounds on `G(n,p)`
//!   for the whole range of `p` (Theorem 3).
//!
//! All processes implement the [`Process`] trait, are **self-stabilizing**
//! (they may be started from an arbitrary state vector, see [`init`]), and
//! expose the per-round vertex partitions used throughout the paper's
//! analysis (`B_t`, `A_t`, `I_t`, `V_t`).
//!
//! Rounds execute through the shared incremental [`engine`]: per-vertex
//! black-neighbor counters updated by delta propagation, a maintained
//! active-frontier worklist, and cached counts, so one round costs
//! `O(|A_t| + vol(A_t))` instead of `O(n + m)` and the stabilization check is
//! `O(1)`. Every process also retains a naive `step_reference` full-scan
//! path that is bit-identical (same states, same RNG stream) and serves as
//! the oracle for the engine's trace-equality tests.
//!
//! On top of that, rounds are **direction-optimizing** ([`RoundStrategy`]):
//! when the frontier is a constant fraction of the graph (the dense early
//! phase) the engine switches from the sparse worklist path to a flat,
//! branch-light dense sweep with a fused full recount — faster than both the
//! sparse path and the naive reference in that regime — and switches back
//! once the frontier collapses. The adaptive choice is bit-identical to
//! forcing either path.
//!
//! Each process supports two [`ExecutionMode`]s. The default
//! `Sequential` mode draws every coin from one shared RNG stream in
//! ascending vertex order (the `step_reference` contract above). `Parallel`
//! mode switches to **counter-based per-vertex randomness**
//! ([`counter_rng`]): each vertex's coin is a pure function of
//! `(run_seed, vertex, round, draw)`, draw order becomes irrelevant, rounds
//! run in data-parallel phases, and the results are **bit-identical for
//! every thread count**. Vertex states are stored bit-packed at 2 bits per
//! vertex ([`packed`]).
//!
//! # Example
//!
//! ```
//! use mis_core::{Process, TwoStateProcess, init::InitStrategy};
//! use mis_graph::{generators, mis_check};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
//! let g = generators::random_tree(200, &mut rng);
//! let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
//! let rounds = proc.run_to_stabilization(&mut rng, 10_000).unwrap();
//! assert!(mis_check::is_mis(&g, &proc.black_set()));
//! assert!(rounds <= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod algorithm;
pub mod byzantine;
pub mod counter_rng;
pub mod engine;
pub mod exec;
pub mod init;
mod log_switch;
mod mutation;
pub mod packed;
mod process;
pub mod scheduler;
pub mod sync;
mod three_color;
mod three_state;
mod two_state;

pub use adapters::{
    register_core_algorithms, ThreeColorAlgorithm, ThreeStateAlgorithm, TwoStateAlgorithm,
};
pub use algorithm::{
    fault_victims, victim_sample, Algorithm, AlgorithmConfig, AlgorithmFactory, CommunicationModel,
    Registry, StepCtx,
};
pub use byzantine::{Adversary, ByzantineOverlay, ByzantineStrategy};
pub use counter_rng::CounterRng;
pub use engine::{FrontierEngine, ScatterSink, VertexClass};
pub use exec::{ExecutionMode, RoundStrategy, DENSE_SWITCH_DIVISOR};
pub use log_switch::{FixedPeriodSwitch, RandomizedLogSwitch, SwitchProcess, DEFAULT_ZETA};
pub use mutation::MutationError;
pub use packed::PackedStates;
pub use process::{Process, StabilizationTimeout, StateCounts};
pub use scheduler::{Activation, CentralDaemon, RandomSubset, Scheduler, Synchronous};
pub use three_color::{ThreeColor, ThreeColorProcess, LOG_SWITCH_A};
pub use three_state::{ThreeState, ThreeStateProcess};
pub use two_state::{Color, TwoStateProcess};
