use std::sync::Arc;

use mis_graph::{CommittedDelta, Graph, GraphDelta, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::counter_rng::{CounterRng, DRAW_STATE};
use crate::engine::{FrontierEngine, VertexClass};
use crate::exec::{resolve_threads, ExecutionMode, RoundStrategy};
use crate::init::InitStrategy;
use crate::log_switch::{RandomizedLogSwitch, SwitchProcess, DEFAULT_ZETA};
use crate::mutation::{GraphRef, MutationError};
use crate::packed::PackedStates;
use crate::process::{Process, StateCounts};

/// The switch parameter `a` used by the paper when instantiating the 3-color
/// process (Definition 28): the logarithmic switch is an `(a, 3)`-switch with
/// `a = 512`, corresponding to `ζ = 4/a = 2⁻⁷` for the randomized switch.
pub const LOG_SWITCH_A: f64 = 512.0;

/// Vertex color of the 3-color MIS process (Definition 28).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreeColor {
    /// The vertex currently claims MIS membership.
    Black,
    /// The vertex does not claim membership and may become black when it has
    /// no black neighbor.
    White,
    /// The vertex recently retreated from black; it behaves like white for
    /// its neighbors but cannot turn black again until its switch turns on
    /// and releases it to white.
    Gray,
}

impl ThreeColor {
    /// `true` if the color is [`ThreeColor::Black`].
    pub fn is_black(self) -> bool {
        matches!(self, ThreeColor::Black)
    }

    /// The 2-bit code used by the packed state storage.
    #[inline]
    pub(crate) fn code(self) -> u8 {
        match self {
            ThreeColor::White => 0,
            ThreeColor::Black => 1,
            ThreeColor::Gray => 2,
        }
    }

    /// Inverse of [`code`](Self::code).
    #[inline]
    pub(crate) fn from_code(code: u8) -> Self {
        match code {
            0 => ThreeColor::White,
            1 => ThreeColor::Black,
            2 => ThreeColor::Gray,
            other => unreachable!("invalid 3-color code {other}"),
        }
    }
}

/// The 3-color local rule. Black/white vertices are active (and pending) by
/// the 2-state rule; gray vertices never draw but stay pending while they
/// wait for their switch to release them to white.
fn classify(colors: &PackedStates) -> impl Fn(VertexId, u32) -> VertexClass + Sync + '_ {
    move |u, black_nbrs| match ThreeColor::from_code(colors.get(u)) {
        ThreeColor::Black => {
            let a = black_nbrs > 0;
            VertexClass {
                active: a,
                pending: a,
            }
        }
        ThreeColor::White => {
            let a = black_nbrs == 0;
            VertexClass {
                active: a,
                pending: a,
            }
        }
        ThreeColor::Gray => VertexClass {
            active: false,
            pending: true,
        },
    }
}

/// The **3-color MIS process** of Definition 28: the 2-state process extended
/// with a gray color and a [`SwitchProcess`] that controls how quickly gray
/// vertices may return to white (and hence how often a vertex can flip from
/// white to black).
///
/// Differences from the 2-state rule:
///
/// * a black vertex with a black neighbor moves to **gray** (not white) with
///   probability 1/2;
/// * a gray vertex becomes white only when its switch output is `on`;
/// * neighbors treat gray exactly like white.
///
/// Instantiated with the [`RandomizedLogSwitch`] (6 states) this gives
/// 3 × 6 = 18 states per vertex and stabilizes in polylog rounds on `G(n,p)`
/// for **every** `0 ≤ p ≤ 1` (Theorem 3 / Theorem 32).
///
/// Colors are stored bit-packed (2 bits per vertex) and the color update
/// runs through the incremental [`FrontierEngine`]
/// (`O(|A_t| + |Γ_t| + vol(A_t))` per round, `O(1)`
/// [`is_stabilized`](Process::is_stabilized)); the switch sub-process is a
/// phase clock that advances every vertex every round, so its `O(n)` step
/// dominates once the color dynamics are quiet (in parallel mode that `O(n)`
/// is data-parallel too).
/// [`step_reference`](ThreeColorProcess::step_reference) retains the naive
/// full-scan color update for differential testing.
///
/// # Execution modes
///
/// Sequential mode (the default) draws all coins — colors and switch — from
/// the shared stream in ascending vertex order; after
/// [`set_execution`](Self::set_execution) with
/// [`ExecutionMode::Parallel`], both sub-processes use counter-based draws
/// (`DRAW_STATE` for colors, `DRAW_SWITCH` for the switch), the shared RNG
/// argument is ignored, and results are bit-identical for every thread
/// count.
///
/// # Example
///
/// ```
/// use mis_core::{ThreeColorProcess, Process, init::InitStrategy};
/// use mis_graph::{generators, mis_check};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
/// let g = generators::gnp(200, 0.3, &mut rng);
/// let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut rng);
/// assert_eq!(p.states_per_vertex(), 18);
/// p.run_to_stabilization(&mut rng, 50_000).unwrap();
/// assert!(mis_check::is_mis(&g, &p.black_set()));
/// ```
#[derive(Debug, Clone)]
pub struct ThreeColorProcess<'g, S> {
    graph: GraphRef<'g>,
    colors: PackedStates,
    engine: FrontierEngine,
    switch: S,
    mode: ExecutionMode,
    strategy: RoundStrategy,
    /// Whether the most recent full synchronous round ran the dense path.
    last_round_dense: bool,
    counter: CounterRng,
    round: usize,
    random_bits: u64,
    worklist: Vec<VertexId>,
    changes: Vec<(VertexId, ThreeColor)>,
    /// Recycled per-chunk change buffers for the parallel round path.
    change_pool: Vec<Vec<(VertexId, ThreeColor)>>,
}

impl<'g> ThreeColorProcess<'g, RandomizedLogSwitch<'g>> {
    /// Creates the process with the paper's instantiation: the randomized
    /// logarithmic switch with `ζ = 2⁻⁷` (18 states per vertex in total).
    /// Both the colors and the switch levels are drawn from `init`.
    pub fn with_randomized_switch<R: Rng + ?Sized>(
        graph: &'g Graph,
        init: InitStrategy,
        rng: &mut R,
    ) -> Self {
        let colors = init.three_color(graph.n(), rng);
        let switch = RandomizedLogSwitch::with_init(graph, init, DEFAULT_ZETA, rng);
        Self::new(graph, colors, switch)
    }
}

impl<'g, S: SwitchProcess> ThreeColorProcess<'g, S> {
    /// Creates the process from an explicit color vector and switch instance.
    ///
    /// # Panics
    ///
    /// Panics if `colors.len() != graph.n()` or the switch is defined over a
    /// different number of vertices.
    pub fn new(graph: &'g Graph, colors: Vec<ThreeColor>, switch: S) -> Self {
        assert_eq!(
            colors.len(),
            graph.n(),
            "initial color vector length must equal the number of vertices"
        );
        assert_eq!(
            switch.n(),
            graph.n(),
            "switch must be defined over the same vertex set"
        );
        let mut p = ThreeColorProcess {
            engine: FrontierEngine::new(graph.n()),
            graph: GraphRef::Borrowed(graph),
            colors: PackedStates::from_codes(colors.into_iter().map(ThreeColor::code)),
            switch,
            mode: ExecutionMode::Sequential,
            strategy: RoundStrategy::Auto,
            last_round_dense: false,
            counter: CounterRng::new(0),
            round: 0,
            random_bits: 0,
            worklist: Vec::new(),
            changes: Vec::new(),
            change_pool: Vec::new(),
        };
        p.rebuild_engine();
        p
    }

    /// Selects the execution mode for subsequent rounds and (re-)keys the
    /// counter-based RNG with `run_seed` (shared by the color and switch
    /// sub-processes, which draw on disjoint draw indices).
    pub fn set_execution(&mut self, mode: ExecutionMode, run_seed: u64) {
        self.mode = mode;
        self.counter = CounterRng::new(run_seed);
    }

    /// The current execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Selects how full synchronous rounds traverse the graph; see
    /// [`RoundStrategy`]. The choice never changes results.
    pub fn set_strategy(&mut self, strategy: RoundStrategy) {
        self.strategy = strategy;
    }

    /// The current round strategy.
    pub fn strategy(&self) -> RoundStrategy {
        self.strategy
    }

    /// `true` if the most recent [`step`](Process::step) ran the dense
    /// full-sweep path.
    pub fn last_round_was_dense(&self) -> bool {
        self.last_round_dense
    }

    /// The underlying graph (the mutated one after
    /// [`apply_mutation`](Self::apply_mutation)).
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// Applies a batch of topology mutations and incrementally re-derives
    /// the engine bookkeeping, so the process re-stabilizes from the
    /// current configuration instead of restarting. The mutated graph is
    /// built **once** and the same `Arc` is handed to the switch's
    /// [`rebind_graph`](SwitchProcess::rebind_graph), keeping both
    /// sub-processes on one identical topology. New vertices start white
    /// with their switch at its waiting state.
    ///
    /// # Errors
    ///
    /// Fails with [`MutationError::Unsupported`] (state untouched) if the
    /// switch implementation cannot follow topology changes, or with
    /// [`MutationError::Graph`] for an invalid delta.
    pub fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        let (new_graph, committed) = self.graph.get().apply_delta(delta)?;
        let arc = Arc::new(new_graph);
        // Rebind the switch first: if it declines, nothing was mutated yet
        // (`apply_delta` is pure) and the error propagates cleanly.
        self.switch.rebind_graph(&arc)?;
        self.colors.grow(committed.new_n);
        self.engine.grow(committed.new_n);
        for &(u, v) in &committed.removed {
            self.engine.edge_update(u, v, false);
        }
        for &(u, v) in &committed.inserted {
            self.engine.edge_update(u, v, true);
        }
        self.graph = GraphRef::Owned(arc);
        let colors = &self.colors;
        self.engine.flush(self.graph.get(), classify(colors));
        Ok(committed)
    }

    /// The switch sub-process.
    pub fn switch(&self) -> &S {
        &self.switch
    }

    /// Mutable access to the switch sub-process, e.g. to inject faults into
    /// its per-vertex state.
    pub fn switch_mut(&mut self) -> &mut S {
        &mut self.switch
    }

    /// Read-only view of the incremental engine bookkeeping, for tests and
    /// diagnostics.
    pub fn engine(&self) -> &FrontierEngine {
        &self.engine
    }

    /// Current color of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn color(&self, u: VertexId) -> ThreeColor {
        assert!(u < self.n(), "vertex {u} out of range");
        ThreeColor::from_code(self.colors.get(u))
    }

    /// The full color vector, materialized from the packed storage in `O(n)`.
    pub fn colors(&self) -> Vec<ThreeColor> {
        self.colors.decode(ThreeColor::from_code)
    }

    /// Number of black neighbors of `u` (delta-maintained).
    pub fn black_neighbor_count(&self, u: VertexId) -> usize {
        self.engine.black_neighbor_count(u)
    }

    /// The current set of gray vertices `Γ_t`.
    pub fn gray_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph
                .get()
                .vertices()
                .filter(|&u| self.color(u) == ThreeColor::Gray),
        )
    }

    /// Overwrites the color of one vertex (transient-fault injection). The
    /// neighborhood bookkeeping is delta-updated in `O(deg(u))`; no full
    /// rebuild happens.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_color(&mut self, u: VertexId, color: ThreeColor) {
        if self.color(u) == color {
            return;
        }
        self.colors.set(u, color.code());
        self.engine.set_black(self.graph.get(), u, color.is_black());
        let colors = &self.colors;
        self.engine.flush(self.graph.get(), classify(colors));
    }

    /// `true` if `u` is active: black with a black neighbor, or white with no
    /// black neighbor. (Gray vertices are never active; they wait for their
    /// switch.)
    pub fn is_active(&self, u: VertexId) -> bool {
        self.engine.is_active(u)
    }

    /// `true` if `u` is stable black (black with no black neighbor).
    pub fn is_stable_black(&self, u: VertexId) -> bool {
        self.engine.is_stable_black(u)
    }

    /// `true` if `u` is stable: stable black or adjacent to a stable black vertex.
    pub fn is_stable(&self, u: VertexId) -> bool {
        self.engine.is_stable(u)
    }

    /// Executes one synchronous round with the naive full-scan reference
    /// implementation (`O(n + m)`): identical colors, switch evolution, and
    /// RNG stream as a sequential-mode [`step`](Process::step), retained as
    /// the oracle for the engine's trace-equality tests.
    pub fn step_reference(&mut self, rng: &mut dyn RngCore) {
        let mut black_nbrs = vec![0u32; self.n()];
        for u in self.graph.get().vertices() {
            if ThreeColor::from_code(self.colors.get(u)).is_black() {
                for v in self.graph.get().neighbors(u) {
                    black_nbrs[v] += 1;
                }
            }
        }
        let next = self.colors.clone();
        for u in self.graph.get().vertices() {
            let new = match ThreeColor::from_code(self.colors.get(u)) {
                ThreeColor::Black if black_nbrs[u] > 0 => {
                    self.random_bits += 1;
                    if rng.gen_bool(0.5) {
                        ThreeColor::Black
                    } else {
                        ThreeColor::Gray
                    }
                }
                ThreeColor::White if black_nbrs[u] == 0 => {
                    self.random_bits += 1;
                    if rng.gen_bool(0.5) {
                        ThreeColor::Black
                    } else {
                        ThreeColor::White
                    }
                }
                ThreeColor::Gray if self.switch.is_on(u) => ThreeColor::White,
                other => other,
            };
            next.set(u, new.code());
        }
        self.colors = next;
        self.switch.step(rng);
        self.rebuild_engine();
        self.round += 1;
    }

    fn rebuild_engine(&mut self) {
        let colors = &self.colors;
        self.engine.rebuild(
            self.graph.get(),
            |u| ThreeColor::from_code(colors.get(u)).is_black(),
            classify(colors),
        );
    }

    /// One sequential round: ascending-order draws from the shared stream,
    /// bit-identical to [`step_reference`](Self::step_reference).
    fn step_sequential(&mut self, rng: &mut dyn RngCore) {
        // The color update of round t uses the switch values σ_{t-1} (the
        // switch output of the *previous* round); the two sub-processes then
        // advance in parallel. The frontier holds the active vertices plus
        // every gray vertex (waiting for its switch); draws happen only at
        // active vertices, in ascending vertex order — the same RNG stream
        // as the full-scan reference.
        self.engine.begin_round(&mut self.worklist);
        self.changes.clear();
        for &u in &self.worklist {
            match ThreeColor::from_code(self.colors.get(u)) {
                ThreeColor::Black => {
                    debug_assert!(self.engine.is_active(u));
                    self.random_bits += 1;
                    if !rng.gen_bool(0.5) {
                        self.changes.push((u, ThreeColor::Gray));
                    }
                }
                ThreeColor::White => {
                    debug_assert!(self.engine.is_active(u));
                    self.random_bits += 1;
                    if rng.gen_bool(0.5) {
                        self.changes.push((u, ThreeColor::Black));
                    }
                }
                ThreeColor::Gray => {
                    if self.switch.is_on(u) {
                        self.changes.push((u, ThreeColor::White));
                    }
                }
            }
        }
        for &(u, color) in &self.changes {
            self.colors.set(u, color.code());
            self.engine.set_black(self.graph.get(), u, color.is_black());
        }
        self.switch.step(rng);
        let colors = &self.colors;
        self.engine.flush(self.graph.get(), classify(colors));
        self.round += 1;
    }

    /// One **dense** sequential round: flat sweep deciding from the cached
    /// activity flags (active black/white vertices draw; gray vertices
    /// consult the previous round's switch output), then the switch advances
    /// and the engine recounts in full. Same coins in the same ascending
    /// order as the sparse path, hence bit-identical.
    fn step_dense_sequential(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.get().n();
        let mut draws = 0u64;
        {
            let colors = &mut self.colors;
            let engine = &self.engine;
            let switch = &self.switch;
            for u in 0..n {
                match ThreeColor::from_code(colors.get(u)) {
                    ThreeColor::Black => {
                        if engine.is_active(u) {
                            draws += 1;
                            if !rng.gen_bool(0.5) {
                                colors.set_mut(u, ThreeColor::Gray.code());
                                engine.stage_black(u, false);
                            }
                        }
                    }
                    ThreeColor::White => {
                        if engine.is_active(u) {
                            draws += 1;
                            if rng.gen_bool(0.5) {
                                colors.set_mut(u, ThreeColor::Black.code());
                                engine.stage_black(u, true);
                            }
                        }
                    }
                    ThreeColor::Gray => {
                        if switch.is_on(u) {
                            // Gray behaves like white for its neighbors, so
                            // the blackness projection is unchanged.
                            colors.set_mut(u, ThreeColor::White.code());
                        }
                    }
                }
            }
        }
        self.random_bits += draws;
        self.switch.step(rng);
        let colors = &self.colors;
        self.engine.recount(self.graph.get(), classify(colors));
        self.round += 1;
    }

    /// One **dense** counter-based round on `threads` threads: chunked
    /// decide sweep, the switch's data-parallel counter step, and the
    /// parallel engine recount. Bit-identical for every thread count and to
    /// the sparse parallel path.
    fn step_dense_parallel(&mut self, threads: usize) {
        let round = self.round as u64;
        let counter = self.counter;
        let colors = &self.colors;
        let switch = &self.switch;
        let graph = self.graph.get();
        let draws = self.engine.dense_sweep(graph, threads, |engine, range| {
            let mut draws = 0u64;
            for u in range {
                match ThreeColor::from_code(colors.get(u)) {
                    ThreeColor::Black => {
                        if engine.is_active(u) {
                            draws += 1;
                            if !counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                                colors.set(u, ThreeColor::Gray.code());
                                engine.stage_black(u, false);
                            }
                        }
                    }
                    ThreeColor::White => {
                        if engine.is_active(u) {
                            draws += 1;
                            if counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                                colors.set(u, ThreeColor::Black.code());
                                engine.stage_black(u, true);
                            }
                        }
                    }
                    ThreeColor::Gray => {
                        if switch.is_on(u) {
                            colors.set(u, ThreeColor::White.code());
                        }
                    }
                }
            }
            draws
        });
        self.random_bits += draws;
        self.switch.step_counter(&self.counter, threads);
        let colors = &self.colors;
        self.engine.recount_par(graph, threads, classify(colors));
        self.round += 1;
    }

    /// One counter-based round on `threads` threads; results are
    /// bit-identical for every thread count. The phase structure lives in
    /// [`FrontierEngine::par_round`]; this supplies the 3-color decide
    /// (black/white vertices draw their coin; gray vertices consult the
    /// *previous* round's switch output) and scatter. The switch then
    /// advances with its own counter-based, data-parallel step — after the
    /// flush, which is equivalent: the color flush never reads switch state
    /// and the switch never reads engine state.
    fn step_parallel(&mut self, threads: usize) {
        self.engine.begin_round_unsorted(&mut self.worklist);
        let round = self.round as u64;
        let counter = self.counter;
        let colors = &self.colors;
        let switch = &self.switch;
        let graph = self.graph.get();
        let change_pool = &mut self.change_pool;
        let draws = self.engine.par_round(
            graph,
            &self.worklist,
            threads,
            |engine, chunk, changes: &mut Vec<(VertexId, ThreeColor)>| {
                let mut draws = 0u64;
                for &u in chunk {
                    match ThreeColor::from_code(colors.get(u)) {
                        ThreeColor::Black => {
                            debug_assert!(engine.is_active(u));
                            draws += 1;
                            if !counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                                colors.set(u, ThreeColor::Gray.code());
                                changes.push((u, ThreeColor::Gray));
                            }
                        }
                        ThreeColor::White => {
                            debug_assert!(engine.is_active(u));
                            draws += 1;
                            if counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                                colors.set(u, ThreeColor::Black.code());
                                changes.push((u, ThreeColor::Black));
                            }
                        }
                        ThreeColor::Gray => {
                            if switch.is_on(u) {
                                colors.set(u, ThreeColor::White.code());
                                changes.push((u, ThreeColor::White));
                            }
                        }
                    }
                }
                draws
            },
            |engine, &(u, color), sink| engine.scatter_black(graph, u, color.is_black(), sink),
            classify(colors),
            change_pool,
        );
        self.random_bits += draws;
        self.switch.step_counter(&self.counter, threads);
        self.round += 1;
    }
}

impl<S: SwitchProcess> Process for ThreeColorProcess<'_, S> {
    fn n(&self) -> usize {
        self.graph.get().n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let dense = match self.strategy {
            RoundStrategy::Sparse => false,
            RoundStrategy::Dense => true,
            RoundStrategy::Auto => self.engine.prefers_dense(self.graph.get()),
        };
        self.last_round_dense = dense;
        match (self.mode, dense) {
            (ExecutionMode::Sequential, false) => self.step_sequential(rng),
            (ExecutionMode::Sequential, true) => self.step_dense_sequential(rng),
            (ExecutionMode::Parallel { threads }, false) => {
                self.step_parallel(resolve_threads(threads))
            }
            (ExecutionMode::Parallel { threads }, true) => {
                self.step_dense_parallel(resolve_threads(threads))
            }
        }
    }

    fn is_stabilized(&self) -> bool {
        // O(1): the engine caches the unstable count.
        self.engine.is_stabilized()
    }

    fn black_set(&self) -> VertexSet {
        self.engine.black_set()
    }

    fn active_set(&self) -> VertexSet {
        self.engine.active_set()
    }

    fn stable_black_set(&self) -> VertexSet {
        self.engine.stable_black_set()
    }

    fn unstable_set(&self) -> VertexSet {
        self.engine.unstable_set()
    }

    fn counts(&self) -> StateCounts {
        self.engine.counts()
    }

    fn states_per_vertex(&self) -> usize {
        3 * self.switch.states_per_vertex()
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits + self.switch.random_bits_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log_switch::FixedPeriodSwitch;
    use mis_graph::{generators, mis_check, Graph};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn apply_mutation_matches_fresh_process_on_mutated_graph() {
        let mut r = rng(403);
        let g = generators::gnp(40, 0.15, &mut r);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        for _ in 0..5 {
            p.step(&mut r);
        }
        let (eu, ev) = g.edges().next().expect("dense gnp has an edge");
        let mut delta = GraphDelta::new();
        delta
            .remove_edge(eu, ev)
            .add_edge(0, g.n() - 1)
            .add_vertex([0, 1])
            .detach_vertex(2);
        let committed = p.apply_mutation(&delta).unwrap();
        assert_eq!(committed.new_n, g.n() + 1);
        assert_eq!(p.n(), g.n() + 1);
        assert_eq!(p.switch().n(), p.n(), "switch follows the graph");
        assert_eq!(p.color(g.n()), ThreeColor::White, "joined vertex is white");
        let g2 = p.graph().clone();
        let levels: Vec<u8> = g2.vertices().map(|u| p.switch().level(u)).collect();
        let fresh_switch = RandomizedLogSwitch::new(&g2, levels, p.switch().zeta());
        let fresh = ThreeColorProcess::new(&g2, p.colors(), fresh_switch);
        assert_eq!(fresh.counts(), p.counts());
        for u in g2.vertices() {
            assert_eq!(fresh.is_active(u), p.is_active(u), "active {u}");
            assert_eq!(fresh.is_stable(u), p.is_stable(u), "stable {u}");
            assert_eq!(
                fresh.black_neighbor_count(u),
                p.black_neighbor_count(u),
                "black_nbrs {u}"
            );
        }
        p.run_to_stabilization(&mut r, 100_000).unwrap();
        assert!(mis_check::is_mis(&g2, &p.black_set()));
    }

    #[test]
    fn mutation_with_non_rebindable_switch_is_rejected_untouched() {
        // A switch with no `rebind_graph` override declines topology
        // changes; the process must report Unsupported without mutating
        // anything.
        struct FrozenSwitch(usize);
        impl SwitchProcess for FrozenSwitch {
            fn n(&self) -> usize {
                self.0
            }
            fn step(&mut self, _rng: &mut dyn RngCore) {}
            fn step_counter(&mut self, _counter: &CounterRng, _threads: usize) {}
            fn is_on(&self, _u: VertexId) -> bool {
                true
            }
            fn states_per_vertex(&self) -> usize {
                1
            }
            fn random_bits_used(&self) -> u64 {
                0
            }
        }

        let g = generators::path(4);
        let colors = vec![
            ThreeColor::White,
            ThreeColor::Black,
            ThreeColor::Gray,
            ThreeColor::White,
        ];
        let mut p = ThreeColorProcess::new(&g, colors.clone(), FrozenSwitch(4));
        let before_counts = p.counts();
        let mut delta = GraphDelta::new();
        delta.add_vertex([0]);
        assert_eq!(p.apply_mutation(&delta), Err(MutationError::Unsupported));
        assert_eq!(p.colors(), colors);
        assert_eq!(p.counts(), before_counts);
        assert_eq!(p.n(), 4);
    }

    #[test]
    fn invalid_mutation_leaves_state_untouched() {
        let mut r = rng(7);
        let g = generators::path(4);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        let before_colors = p.colors();
        let before_counts = p.counts();
        let mut delta = GraphDelta::new();
        delta.add_edge(1, 1); // self-loop
        assert!(p.apply_mutation(&delta).is_err());
        assert_eq!(p.colors(), before_colors);
        assert_eq!(p.counts(), before_counts);
        assert_eq!(p.n(), 4);
    }

    #[test]
    fn eighteen_states_with_randomized_switch() {
        let g = generators::path(4);
        let mut r = rng(0);
        let p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        assert_eq!(p.states_per_vertex(), 18);
    }

    #[test]
    fn gray_waits_for_switch_then_becomes_white() {
        // Single edge, both endpoints black: each flips a coin between black
        // and gray. Force a deterministic scenario with the oracle switch:
        // off for 5 rounds then on.
        let g = generators::path(2);
        let colors = vec![ThreeColor::Gray, ThreeColor::White];
        // Switch: off for first 3 rounds, then on for 1, repeating (on_rounds
        // counts from round 0, so use off-first by starting on=0? The fixed
        // switch is on first; use on_rounds=0 is invalid, so emulate
        // off-first by a long on period and checking behaviour instead).
        let switch = FixedPeriodSwitch::new(2, 1, 3);
        let mut p = ThreeColorProcess::new(&g, colors, switch);
        // Round 1 uses σ_0 = on, so the gray vertex is released to white
        // immediately; the white vertex 1 has no black neighbor so it flips.
        let mut r = rng(1);
        p.step(&mut r);
        assert_ne!(p.color(0), ThreeColor::Gray);
    }

    #[test]
    fn gray_is_never_active_and_blocks_nothing() {
        let g = generators::path(2);
        // Vertex 0 gray, vertex 1 black: vertex 1 has no *black* neighbor so
        // it is stable; vertex 0 is not active.
        let switch = FixedPeriodSwitch::new(2, 1, 1);
        let p = ThreeColorProcess::new(&g, vec![ThreeColor::Gray, ThreeColor::Black], switch);
        assert!(!p.is_active(0));
        assert!(p.is_stable_black(1));
        assert!(
            p.is_stable(0),
            "gray neighbor of a stable black vertex is stable"
        );
        assert!(p.is_stabilized());
    }

    #[test]
    fn black_with_black_neighbor_becomes_black_or_gray_never_white() {
        let g = generators::complete(2);
        let switch = FixedPeriodSwitch::new(2, 1, 1);
        let mut p = ThreeColorProcess::new(&g, vec![ThreeColor::Black, ThreeColor::Black], switch);
        let mut r = rng(3);
        p.step(&mut r);
        for u in 0..2 {
            assert_ne!(
                p.color(u),
                ThreeColor::White,
                "black vertex with black neighbor may not jump to white"
            );
        }
    }

    #[test]
    fn stabilizes_to_mis_on_various_graphs() {
        let mut r = rng(7);
        let graphs = vec![
            generators::complete(32),
            generators::path(40),
            generators::star(30),
            generators::random_tree(80, &mut r),
            generators::gnp(120, 0.1, &mut r),
            generators::gnp(80, 0.7, &mut r),
            generators::disjoint_cliques(4, 8),
            Graph::empty(10),
        ];
        for (i, g) in graphs.into_iter().enumerate() {
            for init in [
                InitStrategy::AllWhite,
                InitStrategy::AllBlack,
                InitStrategy::Random,
            ] {
                let mut p = ThreeColorProcess::with_randomized_switch(&g, init, &mut r);
                p.run_to_stabilization(&mut r, 200_000)
                    .unwrap_or_else(|e| panic!("graph {i} with {init:?}: {e}"));
                assert!(
                    mis_check::is_mis(&g, &p.black_set()),
                    "graph {i}, init {init:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_mode_stabilizes_and_is_thread_count_invariant() {
        let g = generators::gnp(90, 0.1, &mut rng(81));
        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut r = rng(82);
            let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
            p.set_execution(ExecutionMode::Parallel { threads }, 17);
            for _ in 0..60 {
                if p.is_stabilized() {
                    break;
                }
                p.step(&mut r);
            }
            outcomes.push((p.colors(), p.black_set(), p.counts(), p.random_bits_used()));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        // Parallel mode also reaches a valid MIS.
        let mut r = rng(83);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::AllBlack, &mut r);
        p.set_execution(ExecutionMode::Parallel { threads: 2 }, 18);
        p.run_to_stabilization(&mut r, 200_000).unwrap();
        assert!(mis_check::is_mis(&g, &p.black_set()));
    }

    #[test]
    fn gray_set_tracks_gray_vertices() {
        let mut r = rng(11);
        let g = generators::gnp(60, 0.2, &mut r);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::AllBlack, &mut r);
        for _ in 0..30 {
            let gray = p.gray_set();
            for u in g.vertices() {
                assert_eq!(gray.contains(u), p.color(u) == ThreeColor::Gray);
            }
            let c = p.counts();
            assert_eq!(c.black + c.non_black, g.n());
            if p.is_stabilized() {
                break;
            }
            p.step(&mut r);
        }
    }

    #[test]
    fn stability_is_monotone() {
        let mut r = rng(13);
        let g = generators::gnp(70, 0.15, &mut r);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        let mut stable: Vec<bool> = vec![false; g.n()];
        for _ in 0..400 {
            for u in g.vertices() {
                if stable[u] {
                    assert!(p.is_stable(u), "vertex {u} lost stability");
                } else if p.is_stable(u) {
                    stable[u] = true;
                }
            }
            if p.is_stabilized() {
                break;
            }
            p.step(&mut r);
        }
    }

    #[test]
    fn fast_step_matches_reference_step() {
        let g = generators::gnp(60, 0.12, &mut rng(47));
        let mut r_fast = rng(53);
        let mut r_ref = rng(53);
        let mut fast =
            ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r_fast);
        let mut reference =
            ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r_ref);
        for round in 0..80 {
            assert_eq!(fast.counts(), reference.counts(), "round {round}");
            fast.step(&mut r_fast);
            reference.step_reference(&mut r_ref);
            assert_eq!(fast.colors(), reference.colors(), "round {round}");
            assert_eq!(fast.random_bits_used(), reference.random_bits_used());
        }
    }

    #[test]
    #[should_panic(expected = "switch must be defined over the same vertex set")]
    fn switch_size_mismatch_panics() {
        let g = generators::path(3);
        let switch = FixedPeriodSwitch::new(5, 1, 1);
        ThreeColorProcess::new(&g, vec![ThreeColor::White; 3], switch);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The 3-color process stabilizes to an MIS from arbitrary colors on
        /// random graphs across the full density range.
        #[test]
        fn stabilizes_from_arbitrary_states(seed in 0u64..10_000, n in 1usize..50, p_edge in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p_edge, &mut r);
            let mut proc = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
            proc.run_to_stabilization(&mut r, 400_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &proc.black_set()));
        }
    }
}
