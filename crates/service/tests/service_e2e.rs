//! End-to-end tests: a real daemon on a loopback port, driven through the
//! vendored HTTP client — the same path the CI smoke gate and `svc_load`
//! use.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mis_graph::{mis_check, Graph, VertexSet};
use mis_service::api::{
    AlgorithmInfo, GraphInfo, JobInfo, JobStatus, MetricsReport, PatchResponse,
};
use mis_service::{Service, ServiceConfig};
use serde::Deserialize;
use warp::{Client, ClientResponse};

fn start_service() -> (Service, Client) {
    let service = Service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("bind loopback");
    let client = Client::new(service.local_addr().to_string());
    (service, client)
}

fn parse<T: Deserialize>(resp: &ClientResponse) -> T {
    serde_json::from_str(resp.text().expect("UTF-8 body")).expect("response JSON")
}

fn create_gnp(client: &mut Client, n: usize, p: f64, seed: u64) -> GraphInfo {
    let body = format!("{{\"spec\": {{\"Gnp\": {{\"n\": {n}, \"p\": {p}}}}}, \"seed\": {seed}}}");
    let resp = client.post_json("/v1/graphs", body).unwrap();
    assert_eq!(resp.status, 201, "{:?}", resp.text());
    parse(&resp)
}

fn poll_job(client: &mut Client, id: u64) -> JobInfo {
    let resp = client.get(&format!("/v1/jobs/{id}")).unwrap();
    assert_eq!(resp.status, 200);
    parse(&resp)
}

fn wait_terminal(client: &mut Client, id: u64) -> JobInfo {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let info = poll_job(client, id);
        if info.status.is_terminal() {
            return info;
        }
        assert!(Instant::now() < deadline, "job {id} did not finish");
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_poll_download_lifecycle() {
    let (service, mut client) = start_service();

    // Health and empty listings.
    assert_eq!(client.get("/v1/healthz").unwrap().status, 200);
    let graphs: Vec<GraphInfo> = parse(&client.get("/v1/graphs").unwrap());
    assert!(graphs.is_empty());

    // The algorithm catalog lists the whole registry.
    let algorithms: Vec<AlgorithmInfo> = parse(&client.get("/v1/algorithms").unwrap());
    assert!(algorithms.len() >= 10);
    assert!(algorithms.iter().any(|a| a.key == "two-state"));

    let graph = create_gnp(&mut client, 200, 0.05, 42);
    assert_eq!((graph.id, graph.n, graph.version), (1, 200, 1));

    // Run every registry algorithm once over the same graph.
    let mut job_ids = Vec::new();
    for algorithm in &algorithms {
        let resp = client
            .post_json(
                "/v1/jobs",
                format!(
                    "{{\"graph\": {}, \"algorithm\": \"{}\", \"seed\": 7}}",
                    graph.id, algorithm.key
                ),
            )
            .unwrap();
        assert_eq!(resp.status, 202, "{:?}", resp.text());
        let info: JobInfo = parse(&resp);
        job_ids.push(info.id);
    }
    for id in job_ids {
        let info = wait_terminal(&mut client, id);
        assert_eq!(info.status, JobStatus::Completed, "{info:?}");
        let outcome = info.outcome.unwrap();
        assert!(
            outcome.valid_mis,
            "algorithm {} invalid MIS",
            info.algorithm
        );
        // Download the MIS as NDJSON and re-validate it client-side.
        let resp = client.get(&format!("/v1/jobs/{id}/mis")).unwrap();
        assert_eq!(resp.status, 200);
        let ids: Vec<usize> = resp
            .text()
            .unwrap()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(ids.len(), outcome.mis_size);
    }

    service.shutdown();
}

#[test]
fn patch_mid_job_restabilizes_to_a_valid_mis() {
    let (service, mut client) = start_service();
    let graph = create_gnp(&mut client, 300, 0.03, 9);

    // A resident job: converge, then linger so the PATCH is guaranteed to
    // land on the *running* algorithm.
    let resp = client
        .post_json(
            "/v1/jobs",
            format!(
                "{{\"graph\": {}, \"algorithm\": \"two-state\", \"seed\": 3, \
                 \"record_trace\": true, \"linger_micros\": 30000000}}",
                graph.id
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 202);
    let job: JobInfo = parse(&resp);

    // Wait for it to be running (resident).
    let deadline = Instant::now() + Duration::from_secs(10);
    while poll_job(&mut client, job.id).status != JobStatus::Running {
        assert!(Instant::now() < deadline);
        thread::sleep(Duration::from_millis(2));
    }

    // Live-mutate: rewire a chunk of the graph under the running job.
    let resp = client
        .patch_json(
            &format!("/v1/graphs/{}/edges", graph.id),
            "{\"add\": [[0,1],[0,2],[0,3],[1,2]], \"remove\": [[4,5]], \
             \"add_vertices\": 3, \"detach\": [6]}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    let patch: PatchResponse = parse(&resp);
    assert_eq!(patch.new_n, 303);
    assert_eq!(patch.version, 2);
    assert_eq!(patch.jobs_notified, 1, "{patch:?}");
    assert_eq!(patch.jobs_skipped, 0);

    // Give the job a moment to apply + re-stabilize, then end the linger.
    thread::sleep(Duration::from_millis(150));
    let resp = client.delete(&format!("/v1/jobs/{}", job.id)).unwrap();
    assert_eq!(resp.status, 202);
    let info = wait_terminal(&mut client, job.id);

    // Cancellation raced the linger; either way the mutation was applied.
    // If the job completed, its final MIS must be valid on the *mutated*
    // topology (validated server-side and revalidated here).
    if info.status == JobStatus::Completed {
        let outcome = info.outcome.clone().unwrap();
        assert_eq!(outcome.mutations_applied, 1, "{info:?}");
        assert!(outcome.stabilized);
        assert!(outcome.valid_mis);
        assert_eq!(outcome.n, 303);

        // Rebuild the mutated graph client-side and check is_mis directly.
        let resp = client.get(&format!("/v1/jobs/{}/mis", job.id)).unwrap();
        let ids: Vec<usize> = resp
            .text()
            .unwrap()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(9)
        };
        let base = mis_sim::spec::GraphSpec::Gnp { n: 300, p: 0.03 }.generate(&mut rng);
        let mut delta = mis_graph::GraphDelta::new();
        delta.add_edge(0, 1);
        delta.add_edge(0, 2);
        delta.add_edge(0, 3);
        delta.add_edge(1, 2);
        delta.remove_edge(4, 5);
        delta.add_vertex([]);
        delta.add_vertex([]);
        delta.add_vertex([]);
        delta.detach_vertex(6);
        let (mutated, _) = base.apply_delta(&delta).unwrap();
        let set = VertexSet::from_indices(mutated.n(), ids.iter().copied());
        assert!(mis_check::is_mis(&mutated, &set));
    }

    // The event stream contains the topology event either way.
    let resp = client.get(&format!("/v1/jobs/{}/events", job.id)).unwrap();
    assert_eq!(resp.status, 200);
    let events = resp.text().unwrap().to_string();
    assert!(events.contains("\"event\":\"topology\""), "{events}");
    assert!(events.contains("\"event\":\"round\""));
    assert!(events
        .lines()
        .last()
        .unwrap()
        .contains("\"event\":\"done\""));

    service.shutdown();
}

#[test]
fn error_paths_return_proper_statuses() {
    let (service, mut client) = start_service();

    assert_eq!(client.get("/v1/graphs/99").unwrap().status, 404);
    assert_eq!(client.get("/v1/jobs/99").unwrap().status, 404);
    assert_eq!(client.delete("/v1/jobs/99").unwrap().status, 404);
    assert_eq!(client.get("/v1/nope").unwrap().status, 404);
    assert_eq!(
        client
            .post_json("/v1/graphs", "{\"name\": 3}")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client.post_json("/v1/graphs", "not json").unwrap().status,
        400
    );
    // Method not allowed on a known path.
    assert_eq!(
        client
            .request(warp::Method::Patch, "/v1/jobs", None, Vec::new())
            .unwrap()
            .status,
        405
    );

    let graph = create_gnp(&mut client, 20, 0.2, 1);
    // Unknown algorithm.
    let resp = client
        .post_json(
            "/v1/jobs",
            format!("{{\"graph\": {}, \"algorithm\": \"nope\"}}", graph.id),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    // Unknown graph.
    let resp = client
        .post_json("/v1/jobs", "{\"graph\": 999, \"algorithm\": \"two-state\"}")
        .unwrap();
    assert_eq!(resp.status, 404);
    // Invalid delta (endpoint out of range).
    let resp = client
        .patch_json(
            &format!("/v1/graphs/{}/edges", graph.id),
            "{\"add\": [[0, 9999]]}",
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    // Empty patch.
    let resp = client
        .patch_json(&format!("/v1/graphs/{}/edges", graph.id), "{}")
        .unwrap();
    assert_eq!(resp.status, 400);
    // MIS download before completion -> 409 (submit a lingering job).
    let resp = client
        .post_json(
            "/v1/jobs",
            format!(
                "{{\"graph\": {}, \"algorithm\": \"two-state\", \"linger_micros\": 30000000}}",
                graph.id
            ),
        )
        .unwrap();
    let job: JobInfo = parse(&resp);
    let resp = client.get(&format!("/v1/jobs/{}/mis", job.id)).unwrap();
    assert_eq!(resp.status, 409);
    client.delete(&format!("/v1/jobs/{}", job.id)).unwrap();

    // Graph deletion: jobs already submitted keep their snapshots.
    assert_eq!(
        client
            .delete(&format!("/v1/graphs/{}", graph.id))
            .unwrap()
            .status,
        204
    );
    assert_eq!(
        client
            .get(&format!("/v1/graphs/{}", graph.id))
            .unwrap()
            .status,
        404
    );

    service.shutdown();
}

#[test]
fn upload_edges_and_run_on_them() {
    let (service, mut client) = start_service();
    // A 5-cycle uploaded as an explicit edge list.
    let resp = client
        .post_json(
            "/v1/graphs",
            "{\"name\": \"c5\", \"n\": 5, \"edges\": [[0,1],[1,2],[2,3],[3,4],[4,0]]}",
        )
        .unwrap();
    assert_eq!(resp.status, 201);
    let graph: GraphInfo = parse(&resp);
    assert_eq!((graph.n, graph.m), (5, 5));
    assert_eq!(graph.name, "c5");

    let resp = client
        .post_json(
            "/v1/jobs",
            format!("{{\"graph\": {}, \"algorithm\": \"luby\"}}", graph.id),
        )
        .unwrap();
    let job: JobInfo = parse(&resp);
    let info = wait_terminal(&mut client, job.id);
    assert_eq!(info.status, JobStatus::Completed);
    let outcome = info.outcome.unwrap();
    assert!(outcome.valid_mis);
    assert_eq!(outcome.n, 5);

    // Validate the downloaded MIS against the uploaded topology.
    let resp = client.get(&format!("/v1/jobs/{}/mis", job.id)).unwrap();
    let ids: Vec<usize> = resp
        .text()
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let set = VertexSet::from_indices(g.n(), ids.iter().copied());
    assert!(mis_check::is_mis(&g, &set));

    service.shutdown();
}

#[test]
fn metrics_count_requests_and_jobs() {
    let (service, mut client) = start_service();
    let graph = create_gnp(&mut client, 50, 0.1, 5);
    let resp = client
        .post_json(
            "/v1/jobs",
            format!(
                "{{\"graph\": {}, \"algorithm\": \"three-color\"}}",
                graph.id
            ),
        )
        .unwrap();
    let job: JobInfo = parse(&resp);
    wait_terminal(&mut client, job.id);
    client.get("/v1/nope-nope").unwrap();

    let report: MetricsReport = parse(&client.get("/v1/metrics").unwrap());
    assert!(report.uptime_micros > 0);
    let find = |route: &str, method: &str| {
        report
            .endpoints
            .iter()
            .find(|e| e.route == route && e.method == method)
            .unwrap_or_else(|| panic!("no metrics slot for {method} {route}"))
            .clone()
    };
    assert_eq!(find("/v1/graphs", "POST").requests, 1);
    assert_eq!(find("/v1/jobs", "POST").requests, 1);
    assert!(find("/v1/jobs/:id", "GET").requests >= 1);
    let unmatched = report
        .endpoints
        .iter()
        .find(|e| e.route == "(unmatched)")
        .unwrap();
    assert!(unmatched.requests >= 1);
    assert!(unmatched.errors >= 1);
    assert_eq!(report.jobs.submitted, 1);
    assert_eq!(report.jobs.completed, 1);

    service.shutdown();
}

#[test]
fn crash_recovery_restores_graphs_and_jobs() {
    let dir = std::env::temp_dir().join(format!("mis-e2e-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        data_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    let service = Service::start(&config).expect("bind loopback");
    let mut client = Client::new(service.local_addr().to_string());
    let graph = create_gnp(&mut client, 80, 0.05, 11);
    // Two committed patches -> version 3, n 82.
    for _ in 0..2 {
        let resp = client
            .patch_json(
                &format!("/v1/graphs/{}/edges", graph.id),
                "{\"add_vertices\": 1}",
            )
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    // A job that completes before the crash.
    let resp = client
        .post_json(
            "/v1/jobs",
            format!("{{\"graph\": {}, \"algorithm\": \"greedy\"}}", graph.id),
        )
        .unwrap();
    let done: JobInfo = parse(&resp);
    wait_terminal(&mut client, done.id);
    // A resident job occupying the single worker at the instant of the
    // crash. The linger is long enough to still be running when we crash,
    // but short enough that the post-recovery retry (which re-runs the
    // identical request, linger included) completes within the poll budget.
    let resp = client
        .post_json(
            "/v1/jobs",
            format!(
                "{{\"graph\": {}, \"algorithm\": \"two-state\", \"linger_micros\": 10000000}}",
                graph.id
            ),
        )
        .unwrap();
    let resident: JobInfo = parse(&resp);
    let deadline = Instant::now() + Duration::from_secs(10);
    while poll_job(&mut client, resident.id).status != JobStatus::Running {
        assert!(Instant::now() < deadline);
        thread::sleep(Duration::from_millis(2));
    }
    // ...and two acknowledged jobs stuck in the queue behind it.
    let mut queued = Vec::new();
    for _ in 0..2 {
        let resp = client
            .post_json(
                "/v1/jobs",
                format!("{{\"graph\": {}, \"algorithm\": \"luby\"}}", graph.id),
            )
            .unwrap();
        assert_eq!(resp.status, 202);
        queued.push(parse::<JobInfo>(&resp).id);
    }

    service.crash();

    // A successor on the same data dir recovers everything acknowledged.
    let service = Service::start(&config).expect("rebind after crash");
    let mut client = Client::new(service.local_addr().to_string());
    let info: GraphInfo = parse(&client.get(&format!("/v1/graphs/{}", graph.id)).unwrap());
    assert_eq!((info.id, info.version, info.n), (graph.id, 3, 82));
    let done_after = poll_job(&mut client, done.id);
    assert_eq!(done_after.status, JobStatus::Completed);
    assert!(done_after.outcome.unwrap().valid_mis);
    let interrupted = poll_job(&mut client, resident.id);
    assert_eq!(
        interrupted.status,
        JobStatus::Interrupted,
        "{interrupted:?}"
    );
    for id in queued {
        let info = wait_terminal(&mut client, id);
        assert_eq!(info.status, JobStatus::Completed, "{info:?}");
        assert!(info.outcome.unwrap().valid_mis);
    }
    // The interrupted job re-runs through the retry endpoint.
    let resp = client
        .post_json(&format!("/v1/jobs/{}/retry", resident.id), "{}")
        .unwrap();
    assert_eq!(resp.status, 202, "{:?}", resp.text());
    let fresh: JobInfo = parse(&resp);
    let rerun = wait_terminal(&mut client, fresh.id);
    assert_eq!(rerun.status, JobStatus::Completed);
    assert!(rerun.outcome.unwrap().valid_mis);
    // Retry is only for interrupted jobs.
    let resp = client
        .post_json(&format!("/v1/jobs/{}/retry", done.id), "{}")
        .unwrap();
    assert_eq!(resp.status, 409);

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_endpoint_flags_and_drain_refuses_new_jobs() {
    let (service, mut client) = start_service();
    assert!(!service.shutdown_requested());
    let resp = client.post_json("/v1/admin/shutdown", "{}").unwrap();
    assert_eq!(resp.status, 202);
    assert!(service.shutdown_requested());

    let graph = create_gnp(&mut client, 30, 0.1, 2);
    let state = Arc::clone(service.state());
    service.shutdown();
    // After shutdown the store refuses work (the daemon would have exited).
    assert!(state.jobs.is_draining());
    drop(graph);
}
