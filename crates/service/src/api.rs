//! Request/response types of the HTTP API.
//!
//! Everything here round-trips through the vendored serde `Value` tree; the
//! request types with optional knobs carry hand-written impls (the vendored
//! derive has no `#[serde(default)]`), mirroring the `ExperimentSpec` idiom
//! in `mis-sim`.

use mis_core::exec::{ExecutionMode, RoundStrategy};
use mis_core::init::InitStrategy;
use mis_graph::{Graph, GraphDelta, VertexId};
use mis_sim::spec::{GraphSpec, SchedulerSpec};
use serde::{Deserialize, Serialize, Value};

/// Default round budget for jobs that do not set one (matches
/// `ExperimentSpec`).
pub const DEFAULT_MAX_ROUNDS: usize = 100_000;

fn optional<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    match value {
        Value::Object(fields) => fields
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, field)| field),
        _ => None,
    }
}

fn with_default<T: Deserialize + Default>(value: &Value, name: &str) -> Result<T, serde::Error> {
    match optional(value, name) {
        Some(field) => T::from_value(field),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Graphs
// ---------------------------------------------------------------------------

/// Where a new graph's topology comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// Generate from a [`GraphSpec`] (seeded by the request's `seed`).
    Spec(GraphSpec),
    /// Explicit vertex count + edge list upload.
    Edges {
        /// Number of vertices.
        n: usize,
        /// Undirected edges as `(u, v)` pairs.
        edges: Vec<(VertexId, VertexId)>,
    },
}

impl GraphSource {
    /// Builds the graph (spec generation is seeded by `seed`).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid uploads (out-of-range endpoints,
    /// self-loops).
    pub fn materialize(&self, seed: u64) -> Result<Graph, String> {
        match self {
            GraphSource::Spec(spec) => {
                use rand::SeedableRng;
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                Ok(spec.generate(&mut rng))
            }
            GraphSource::Edges { n, edges } => {
                Graph::from_edges(*n, edges.iter().copied()).map_err(|e| e.to_string())
            }
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            GraphSource::Spec(spec) => spec.label(),
            GraphSource::Edges { n, edges } => format!("upload(n={n},m={})", edges.len()),
        }
    }
}

/// `POST /v1/graphs` body.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateGraphRequest {
    /// Display name; defaults to the source label.
    pub name: Option<String>,
    /// Topology source: a `spec` field or `n` + `edges` fields.
    pub source: GraphSource,
    /// Seed for spec generation (default 0).
    pub seed: u64,
}

impl Serialize for CreateGraphRequest {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(name) = &self.name {
            fields.push(("name".to_string(), Value::Str(name.clone())));
        }
        match &self.source {
            GraphSource::Spec(spec) => fields.push(("spec".to_string(), spec.to_value())),
            GraphSource::Edges { n, edges } => {
                fields.push(("n".to_string(), n.to_value()));
                fields.push(("edges".to_string(), edges.to_value()));
            }
        }
        fields.push(("seed".to_string(), self.seed.to_value()));
        Value::Object(fields)
    }
}

impl Deserialize for CreateGraphRequest {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let name: Option<String> = with_default(value, "name")?;
        let source = match optional(value, "spec") {
            Some(spec) => GraphSource::Spec(GraphSpec::from_value(spec)?),
            None => {
                let n = usize::from_value(serde::get_field(value, "n").map_err(|_| {
                    serde::Error::custom("graph request needs either `spec` or `n` + `edges`")
                })?)?;
                let edges = Vec::from_value(serde::get_field(value, "edges")?)?;
                GraphSource::Edges { n, edges }
            }
        };
        let seed = with_default(value, "seed")?;
        Ok(CreateGraphRequest { name, source, seed })
    }
}

/// One graph in the registry, as reported by `GET /v1/graphs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphInfo {
    /// Registry id (used in job submissions and `PATCH` paths).
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Current vertex count.
    pub n: usize,
    /// Current edge count.
    pub m: usize,
    /// Bumped by every applied `PATCH`.
    pub version: u64,
    /// Human-readable source label.
    pub source: String,
}

/// `PATCH /v1/graphs/:id/edges` body: a `GraphDelta` in wire form. All
/// fields default to empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatchEdgesRequest {
    /// Edges to insert.
    pub add: Vec<(VertexId, VertexId)>,
    /// Edges to remove.
    pub remove: Vec<(VertexId, VertexId)>,
    /// Number of fresh isolated vertices to append.
    pub add_vertices: usize,
    /// Vertices to detach (drop all incident edges; ids never disappear).
    pub detach: Vec<VertexId>,
}

impl PatchEdgesRequest {
    /// `true` when the patch contains no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty()
            && self.remove.is_empty()
            && self.add_vertices == 0
            && self.detach.is_empty()
    }

    /// Converts to the engine's [`GraphDelta`].
    pub fn delta(&self) -> GraphDelta {
        let mut delta = GraphDelta::new();
        for &(u, v) in &self.add {
            delta.add_edge(u, v);
        }
        for &(u, v) in &self.remove {
            delta.remove_edge(u, v);
        }
        for _ in 0..self.add_vertices {
            delta.add_vertex([]);
        }
        for &u in &self.detach {
            delta.detach_vertex(u);
        }
        delta
    }
}

impl Serialize for PatchEdgesRequest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("add".to_string(), self.add.to_value()),
            ("remove".to_string(), self.remove.to_value()),
            ("add_vertices".to_string(), self.add_vertices.to_value()),
            ("detach".to_string(), self.detach.to_value()),
        ])
    }
}

impl Deserialize for PatchEdgesRequest {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(PatchEdgesRequest {
            add: with_default(value, "add")?,
            remove: with_default(value, "remove")?,
            add_vertices: with_default(value, "add_vertices")?,
            detach: with_default(value, "detach")?,
        })
    }
}

/// `PATCH /v1/graphs/:id/edges` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatchResponse {
    /// Graph id.
    pub graph: u64,
    /// Registry version after the patch.
    pub version: u64,
    /// Vertex count before.
    pub old_n: usize,
    /// Vertex count after (joins append ids).
    pub new_n: usize,
    /// Net edges inserted.
    pub inserted: usize,
    /// Net edges removed.
    pub removed: usize,
    /// Running/queued jobs on this graph whose mailbox received the delta.
    pub jobs_notified: usize,
    /// Jobs on this graph skipped because their algorithm cannot follow
    /// topology changes.
    pub jobs_skipped: usize,
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// `POST /v1/jobs` body. Only `graph` and `algorithm` are required.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Target graph id.
    pub graph: u64,
    /// Registry key (see `GET /v1/algorithms`).
    pub algorithm: String,
    /// Trial RNG seed (default 0).
    pub seed: u64,
    /// Round budget (default [`DEFAULT_MAX_ROUNDS`]).
    pub max_rounds: usize,
    /// Activation scheduler (default synchronous).
    pub scheduler: SchedulerSpec,
    /// Round traversal strategy (default adaptive).
    pub strategy: RoundStrategy,
    /// Sequential or data-parallel rounds (default sequential).
    pub execution: ExecutionMode,
    /// Initial-state strategy (default random — the self-stabilizing case).
    pub init: InitStrategy,
    /// Record per-round state counts into the job's event stream.
    pub record_trace: bool,
    /// Artificial per-round delay in microseconds (default 0). Test/demo
    /// knob: keeps a job running long enough to observe live `PATCH`es and
    /// streams deterministically.
    pub round_delay_micros: u64,
    /// How long a stabilized job keeps polling its mutation mailbox before
    /// completing, in microseconds (default 0: complete immediately).
    /// A non-zero linger makes "PATCH a running job" deterministic: the job
    /// stays resident after converging, applies any delta that arrives, and
    /// re-stabilizes incrementally from its current configuration.
    pub linger_micros: u64,
}

impl JobRequest {
    /// A request with defaults for everything but the target graph and
    /// algorithm.
    pub fn new(graph: u64, algorithm: impl Into<String>) -> Self {
        JobRequest {
            graph,
            algorithm: algorithm.into(),
            seed: 0,
            max_rounds: DEFAULT_MAX_ROUNDS,
            scheduler: SchedulerSpec::Synchronous,
            strategy: RoundStrategy::Auto,
            execution: ExecutionMode::Sequential,
            init: InitStrategy::Random,
            record_trace: false,
            round_delay_micros: 0,
            linger_micros: 0,
        }
    }
}

impl Serialize for JobRequest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("graph".to_string(), self.graph.to_value()),
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("max_rounds".to_string(), self.max_rounds.to_value()),
            ("scheduler".to_string(), self.scheduler.to_value()),
            ("strategy".to_string(), self.strategy.to_value()),
            ("execution".to_string(), self.execution.to_value()),
            ("init".to_string(), self.init.to_value()),
            ("record_trace".to_string(), self.record_trace.to_value()),
            (
                "round_delay_micros".to_string(),
                self.round_delay_micros.to_value(),
            ),
            ("linger_micros".to_string(), self.linger_micros.to_value()),
        ])
    }
}

impl Deserialize for JobRequest {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let graph = u64::from_value(serde::get_field(value, "graph")?)?;
        let algorithm = String::from_value(serde::get_field(value, "algorithm")?)?;
        let defaults = JobRequest::new(graph, algorithm);
        let max_rounds = match optional(value, "max_rounds") {
            Some(v) => usize::from_value(v)?,
            None => DEFAULT_MAX_ROUNDS,
        };
        let scheduler = match optional(value, "scheduler") {
            Some(v) => SchedulerSpec::from_value(v)?,
            None => SchedulerSpec::Synchronous,
        };
        let init = match optional(value, "init") {
            Some(v) => InitStrategy::from_value(v)?,
            None => InitStrategy::Random,
        };
        let execution = match optional(value, "execution") {
            Some(v) => {
                let execution = ExecutionMode::from_value(v)?;
                execution
                    .validate()
                    .map_err(|e| serde::Error::custom(format!("invalid execution mode: {e}")))?;
                execution
            }
            None => ExecutionMode::Sequential,
        };
        Ok(JobRequest {
            seed: with_default(value, "seed")?,
            max_rounds,
            scheduler,
            strategy: with_default(value, "strategy")?,
            execution,
            init,
            record_trace: with_default(value, "record_trace")?,
            round_delay_micros: with_default(value, "round_delay_micros")?,
            linger_micros: with_default(value, "linger_micros")?,
            ..defaults
        })
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished (see the outcome for stabilization/validity).
    Completed,
    /// Cancelled via `DELETE /v1/jobs/:id` or shutdown drain.
    Cancelled,
    /// The worker failed (bad scheduler/algorithm combination, panic).
    Failed,
    /// The job was running when the service crashed; journal replay marked
    /// it terminal without a result. Re-runnable via
    /// `POST /v1/jobs/:id/retry`, which resubmits the stored request as a
    /// fresh job.
    Interrupted,
}

impl JobStatus {
    /// `true` once the job will never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed
                | JobStatus::Cancelled
                | JobStatus::Failed
                | JobStatus::Interrupted
        )
    }
}

/// Final result of a completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the algorithm reported stabilization within the budget.
    pub stabilized: bool,
    /// Whether the final black set is a valid MIS of the (possibly mutated)
    /// graph, checked with `mis_check::is_mis`.
    pub valid_mis: bool,
    /// Size of the final black set.
    pub mis_size: usize,
    /// Vertex count of the final graph.
    pub n: usize,
    /// Edge count of the final graph.
    pub m: usize,
    /// Random bits drawn.
    pub random_bits: u64,
    /// States per vertex (`usize::MAX` for super-constant-state baselines).
    pub states_per_vertex: usize,
    /// Live `PATCH` deltas applied mid-run.
    pub mutations_applied: usize,
    /// Wall-clock execution time in microseconds.
    pub wall_micros: u64,
}

/// One job, as reported by `GET /v1/jobs/:id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Job id.
    pub id: u64,
    /// Target graph id.
    pub graph: u64,
    /// Registry key.
    pub algorithm: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Present once the job completed.
    pub outcome: Option<JobOutcome>,
    /// Present when the job failed.
    pub error: Option<String>,
}

// ---------------------------------------------------------------------------
// Algorithms, metrics, errors
// ---------------------------------------------------------------------------

/// One registry algorithm, as reported by `GET /v1/algorithms`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmInfo {
    /// Registry key (use in [`JobRequest::algorithm`]).
    pub key: String,
    /// One-line description.
    pub description: String,
    /// Weakest communication model the rule needs.
    pub communication_model: String,
    /// Can follow live `PATCH` topology changes.
    pub supports_topology_change: bool,
    /// Accepts `ExecutionMode::Parallel`.
    pub supports_parallel: bool,
    /// Accepts non-synchronous schedulers.
    pub supports_partial_activation: bool,
    /// Emits meaningful per-round traces.
    pub supports_trace: bool,
}

/// Counters for one `(route, method)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointMetrics {
    /// Route pattern (e.g. `/v1/jobs/:id`) or `(unmatched)`.
    pub route: String,
    /// HTTP method.
    pub method: String,
    /// Requests dispatched.
    pub requests: u64,
    /// Responses with status >= 400.
    pub errors: u64,
    /// Requests currently executing.
    pub in_flight: u64,
    /// Sum of handler latencies in microseconds.
    pub latency_sum_micros: u64,
    /// Maximum handler latency in microseconds.
    pub latency_max_micros: u64,
}

/// Job-store gauges reported under `GET /v1/metrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobGauges {
    /// Jobs ever accepted.
    pub submitted: u64,
    /// Currently waiting for a worker.
    pub queued: u64,
    /// Currently executing.
    pub running: u64,
    /// Terminal: completed.
    pub completed: u64,
    /// Terminal: cancelled.
    pub cancelled: u64,
    /// Terminal: failed.
    pub failed: u64,
    /// Terminal: interrupted by a crash (recovered from the journal).
    pub interrupted: u64,
}

/// `GET /v1/metrics` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Microseconds since the service started.
    pub uptime_micros: u64,
    /// Per-endpoint counters, in route order.
    pub endpoints: Vec<EndpointMetrics>,
    /// Job-store gauges.
    pub jobs: JobGauges,
}

/// Error body returned by every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable description.
    pub error: String,
}

/// Typed request-path error: status code, message, and an optional
/// `Retry-After` hint for shed-load responses. Handlers build these instead
/// of ad-hoc `(status, string)` pairs so degradation semantics (429 vs 503
/// vs 500) stay consistent across routes.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable description (becomes [`ErrorBody::error`]).
    pub message: String,
    /// Seconds the client should wait before retrying (emitted as a
    /// `Retry-After` header on 429/503 responses).
    pub retry_after: Option<u64>,
}

impl ApiError {
    /// 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 404 Not Found.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 409 Conflict.
    pub fn conflict(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 409,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 429 Too Many Requests with a `Retry-After` hint — the bounded job
    /// queue is full and the client should back off.
    pub fn too_many_requests(message: impl Into<String>, retry_after: u64) -> ApiError {
        ApiError {
            status: 429,
            message: message.into(),
            retry_after: Some(retry_after),
        }
    }

    /// 500 Internal Server Error — a request-path invariant broke (I/O
    /// failure, unrecoverable poisoned state); the process stays up.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 503 Service Unavailable with a `Retry-After` hint — the service is
    /// draining or persistence is unavailable.
    pub fn unavailable(message: impl Into<String>, retry_after: u64) -> ApiError {
        ApiError {
            status: 503,
            message: message.into(),
            retry_after: Some(retry_after),
        }
    }

    /// Renders the error as a JSON HTTP response (with `Retry-After` when
    /// set).
    pub fn into_response(self) -> warp::Response {
        let body = ErrorBody {
            error: self.message,
        };
        let json = serde_json::to_string(&body).unwrap_or_else(|_| "{\"error\":\"error\"}".into());
        let mut response = warp::Response::json(self.status, json);
        if let Some(secs) = self.retry_after {
            response = response.header("retry-after", &secs.to_string());
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
    {
        let json = serde_json::to_string(value).expect("serialize");
        let back: T = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(&back, value, "round trip changed the value: {json}");
        back
    }

    #[test]
    fn create_graph_request_round_trips() {
        round_trip(&CreateGraphRequest {
            name: Some("demo".into()),
            source: GraphSource::Spec(GraphSpec::Gnp { n: 100, p: 0.05 }),
            seed: 7,
        });
        round_trip(&CreateGraphRequest {
            name: None,
            source: GraphSource::Edges {
                n: 3,
                edges: vec![(0, 1), (1, 2)],
            },
            seed: 0,
        });
    }

    #[test]
    fn create_graph_request_defaults() {
        let req: CreateGraphRequest =
            serde_json::from_str("{\"spec\": {\"Complete\": {\"n\": 4}}}").unwrap();
        assert_eq!(req.name, None);
        assert_eq!(req.seed, 0);
        assert!(matches!(req.source, GraphSource::Spec(_)));
        assert!(serde_json::from_str::<CreateGraphRequest>("{\"name\": \"x\"}").is_err());
    }

    #[test]
    fn graph_sources_materialize() {
        let spec = GraphSource::Spec(GraphSpec::Complete { n: 5 });
        let g = spec.materialize(0).unwrap();
        assert_eq!((g.n(), g.m()), (5, 10));
        let upload = GraphSource::Edges {
            n: 3,
            edges: vec![(0, 1), (1, 2)],
        };
        assert_eq!(upload.materialize(0).unwrap().m(), 2);
        let bad = GraphSource::Edges {
            n: 2,
            edges: vec![(0, 5)],
        };
        assert!(bad.materialize(0).is_err());
    }

    #[test]
    fn job_request_round_trips() {
        let mut req = JobRequest::new(3, "three-color");
        req.seed = 11;
        req.max_rounds = 500;
        req.record_trace = true;
        req.round_delay_micros = 250;
        round_trip(&req);
    }

    #[test]
    fn job_request_defaults() {
        let req: JobRequest =
            serde_json::from_str("{\"graph\": 1, \"algorithm\": \"two-state\"}").unwrap();
        assert_eq!(req, JobRequest::new(1, "two-state"));
        assert!(serde_json::from_str::<JobRequest>("{\"graph\": 1}").is_err());
        assert!(serde_json::from_str::<JobRequest>("{\"algorithm\": \"two-state\"}").is_err());
    }

    #[test]
    fn job_request_rejects_invalid_execution() {
        let json = "{\"graph\": 1, \"algorithm\": \"two-state\", \
                    \"execution\": {\"Parallel\": {\"threads\": 9999}}}";
        assert!(serde_json::from_str::<JobRequest>(json).is_err());
    }

    #[test]
    fn patch_request_round_trips_and_builds_delta() {
        let patch = PatchEdgesRequest {
            add: vec![(0, 1)],
            remove: vec![(2, 3)],
            add_vertices: 2,
            detach: vec![4],
        };
        round_trip(&patch);
        assert!(!patch.is_empty());
        assert!(PatchEdgesRequest::default().is_empty());
        let empty: PatchEdgesRequest = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
        // The delta applies against a suitable graph.
        let g = Graph::from_edges(5, [(2, 3), (3, 4)]).unwrap();
        let (g2, committed) = g.apply_delta(&patch.delta()).unwrap();
        assert_eq!(g2.n(), 7);
        assert_eq!(committed.old_n, 5);
    }

    #[test]
    fn info_and_metrics_types_round_trip() {
        round_trip(&GraphInfo {
            id: 1,
            name: "demo".into(),
            n: 10,
            m: 9,
            version: 2,
            source: "gnp(n=10,p=0.3)".into(),
        });
        round_trip(&JobInfo {
            id: 9,
            graph: 1,
            algorithm: "two-state".into(),
            status: JobStatus::Completed,
            outcome: Some(JobOutcome {
                rounds: 17,
                stabilized: true,
                valid_mis: true,
                mis_size: 4,
                n: 10,
                m: 9,
                random_bits: 123,
                states_per_vertex: 2,
                mutations_applied: 1,
                wall_micros: 42,
            }),
            error: None,
        });
        round_trip(&PatchResponse {
            graph: 1,
            version: 3,
            old_n: 10,
            new_n: 12,
            inserted: 2,
            removed: 1,
            jobs_notified: 1,
            jobs_skipped: 0,
        });
        round_trip(&AlgorithmInfo {
            key: "two-state".into(),
            description: "d".into(),
            communication_model: "beeping".into(),
            supports_topology_change: true,
            supports_parallel: true,
            supports_partial_activation: true,
            supports_trace: true,
        });
        round_trip(&MetricsReport {
            uptime_micros: 1,
            endpoints: vec![EndpointMetrics {
                route: "/v1/jobs".into(),
                method: "POST".into(),
                requests: 10,
                errors: 1,
                in_flight: 0,
                latency_sum_micros: 100,
                latency_max_micros: 30,
            }],
            jobs: JobGauges {
                submitted: 10,
                queued: 0,
                running: 2,
                completed: 7,
                cancelled: 1,
                failed: 0,
                interrupted: 0,
            },
        });
        round_trip(&ErrorBody {
            error: "unknown algorithm".into(),
        });
        for status in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Completed,
            JobStatus::Cancelled,
            JobStatus::Failed,
            JobStatus::Interrupted,
        ] {
            round_trip(&status);
            assert_eq!(
                status.is_terminal(),
                !matches!(status, JobStatus::Queued | JobStatus::Running)
            );
        }
    }
}
