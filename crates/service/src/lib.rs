//! Graph-service daemon: the workspace's self-stabilizing MIS engine served
//! over HTTP.
//!
//! A [`Service`] hosts a registry of named graphs ([`graphs::GraphRegistry`])
//! and an asynchronous job store ([`jobs::JobStore`]) behind a small HTTP/1.1
//! API (vendored `warp` stand-in):
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/graphs` | upload edges or generate via `GraphSpec` |
//! | `GET /v1/graphs` · `GET/DELETE /v1/graphs/:id` | inspect / remove graphs |
//! | `PATCH /v1/graphs/:id/edges` | apply a `GraphDelta`, live-mutating running jobs |
//! | `GET /v1/algorithms` | the 10 registry algorithms with capability flags |
//! | `POST /v1/jobs` · `GET /v1/jobs` · `GET/DELETE /v1/jobs/:id` | submit / poll / cancel jobs |
//! | `GET /v1/jobs/:id/events` | live NDJSON trace stream (chunked) |
//! | `GET /v1/jobs/:id/mis` | NDJSON download of the final MIS |
//! | `GET /v1/metrics` | per-endpoint request/latency/in-flight counters |
//! | `GET /v1/healthz` · `POST /v1/admin/shutdown` | liveness / remote drain |
//!
//! Jobs run any of the registry algorithms on a persistent worker pool; a
//! `PATCH` against a graph is forwarded into the mailbox of every running job
//! on that graph, which applies it through `Algorithm::apply_mutation` and
//! re-stabilizes incrementally — the paper's core claim, exercised as a live
//! service. Shutdown (SIGTERM, `DELETE`d jobs, or the admin endpoint) drains
//! in-flight jobs so the pool is never left wedged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod graphs;
pub mod jobs;
pub mod journal;
pub mod metrics;
mod routes;
mod service;
mod sync;

pub use service::{AppState, RecoverySummary, Service, ServiceConfig};
