//! `mis-serve` — the graph-service daemon.
//!
//! Binds the HTTP API, then parks until SIGTERM/SIGINT or
//! `POST /v1/admin/shutdown`, and exits through the graceful drain path
//! (queued jobs cancelled, running jobs finished, pool joined).

use std::process::ExitCode;
use std::time::Duration;

use mis_service::{Service, ServiceConfig};

const HELP: &str = "mis-serve - serve self-stabilizing MIS over HTTP

USAGE:
    mis-serve [--addr HOST:PORT] [--workers N] [--data-dir DIR] [--queue-capacity N]

OPTIONS:
    --addr HOST:PORT     Bind address (default 127.0.0.1:7878)
    --workers N          Job worker threads, 0 = available parallelism (default 0)
    --data-dir DIR       Durability root: journal + snapshots live here and
                         acknowledged graphs/jobs survive crashes (default:
                         in-memory only)
    --queue-capacity N   Bound on the job queue; beyond it submissions are
                         shed with 429 (default 256)
    --help               Show this help

ENDPOINTS (see README 'Graph service' for the full table):
    POST /v1/graphs            upload or generate a graph
    POST /v1/jobs              run a registry algorithm on a graph
    GET  /v1/jobs/:id          poll job status
    GET  /v1/jobs/:id/events   live NDJSON event stream
    PATCH /v1/graphs/:id/edges live topology mutation
    GET  /v1/metrics           per-endpoint counters + job gauges

The daemon drains gracefully on SIGTERM, SIGINT, or POST /v1/admin/shutdown.
";

/// Minimal signal hook on std only: the libc `signal` entry point, linked
/// directly. The handler just stores into an atomic the main loop polls —
/// the only async-signal-safe thing to do anyway.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn handle(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, handle);
            signal(SIGINT, handle);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

fn parse_args() -> Result<Option<ServiceConfig>, String> {
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--addr" => {
                config.addr = args.next().ok_or("--addr needs a HOST:PORT value")?;
            }
            "--workers" => {
                let value = args.next().ok_or("--workers needs a value")?;
                config.workers = value
                    .parse()
                    .map_err(|_| format!("invalid --workers value '{value}'"))?;
            }
            "--data-dir" => {
                let value = args.next().ok_or("--data-dir needs a directory path")?;
                config.data_dir = Some(value.into());
            }
            "--queue-capacity" => {
                let value = args.next().ok_or("--queue-capacity needs a value")?;
                config.queue_capacity = value
                    .parse()
                    .map_err(|_| format!("invalid --queue-capacity value '{value}'"))?;
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    sig::install();
    let service = match Service::start(&config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("error: failed to bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("mis-serve listening on http://{}", service.local_addr());
    let recovery = &service.state().recovery;
    if config.data_dir.is_some() {
        println!(
            "mis-serve recovered {} graph(s), {} job(s) ({} re-queued, {} interrupted){}",
            recovery.graphs,
            recovery.jobs,
            recovery.requeued,
            recovery.interrupted,
            if recovery.torn_tail {
                "; truncated a torn journal tail"
            } else {
                ""
            }
        );
    }

    while !sig::requested() && !service.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("mis-serve draining...");
    service.shutdown();
    println!("mis-serve stopped");
    ExitCode::SUCCESS
}
