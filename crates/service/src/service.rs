//! Service assembly: state, router, server, and lifecycle.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::graphs::GraphRegistry;
use crate::jobs::JobStore;
use crate::metrics::ServiceMetrics;
use crate::routes;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral test port).
    pub addr: String,
    /// Worker threads in the job pool (0 = available parallelism).
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
        }
    }
}

/// Shared state behind every route handler.
pub struct AppState {
    /// Named-graph registry.
    pub graphs: GraphRegistry,
    /// Job store + worker pool.
    pub jobs: Arc<JobStore>,
    /// Service start time (for uptime reporting).
    pub started: Instant,
    /// Set by `POST /v1/admin/shutdown`; the daemon binary polls it.
    pub shutdown_requested: AtomicBool,
    metrics: OnceLock<Arc<ServiceMetrics>>,
}

impl AppState {
    /// The endpoint metrics collector (set once the router is built).
    pub fn metrics(&self) -> Option<&Arc<ServiceMetrics>> {
        self.metrics.get()
    }
}

/// A running graph-service daemon.
pub struct Service {
    state: Arc<AppState>,
    server: warp::Server,
}

impl Service {
    /// Starts the worker pool, builds the router + metrics, and binds the
    /// HTTP server.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn start(config: &ServiceConfig) -> io::Result<Service> {
        let state = Arc::new(AppState {
            graphs: GraphRegistry::new(),
            jobs: JobStore::start(config.workers),
            started: Instant::now(),
            shutdown_requested: AtomicBool::new(false),
            metrics: OnceLock::new(),
        });
        let router = routes::build(&state);
        let metrics = Arc::new(ServiceMetrics::for_routes(&router.patterns()));
        assert!(
            state.metrics.set(Arc::clone(&metrics)).is_ok(),
            "metrics initialized twice"
        );
        let router = router.with_middleware(metrics);
        let server = warp::serve(router).bind(config.addr.as_str())?;
        Ok(Service { state, server })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The shared state (graphs, jobs, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// `true` once a client called `POST /v1/admin/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: drain the job pool (stop intake, cancel queued,
    /// finish running), then stop the HTTP server (event streams end once
    /// their jobs are terminal, so no connection can wedge this).
    pub fn shutdown(self) {
        self.state.jobs.drain();
        self.server.shutdown();
    }
}
