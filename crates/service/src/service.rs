//! Service assembly: state, router, server, persistence, and lifecycle.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::graphs::GraphRegistry;
use crate::jobs::JobStore;
use crate::journal::{Journal, SnapshotDoc, SnapshotGraph, SnapshotJob};
use crate::metrics::ServiceMetrics;
use crate::routes;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral test port).
    pub addr: String,
    /// Worker threads in the job pool (0 = available parallelism).
    pub workers: usize,
    /// Durability root: when set, a write-ahead journal + snapshots live
    /// here and every acknowledged mutation survives a crash. `None` runs
    /// fully in-memory (the pre-durability behavior).
    pub data_dir: Option<PathBuf>,
    /// Bound on the job submission queue (0 = default). Submissions beyond
    /// it are shed with 429.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            data_dir: None,
            queue_capacity: 0,
        }
    }
}

/// What journal replay restored at startup.
#[derive(Debug, Clone, Default)]
pub struct RecoverySummary {
    /// Graphs re-registered at their last committed version.
    pub graphs: usize,
    /// Jobs rehydrated (all statuses).
    pub jobs: usize,
    /// Acknowledged-but-unstarted jobs put back on the queue.
    pub requeued: usize,
    /// Jobs that were running at the crash, now terminal `Interrupted`.
    pub interrupted: usize,
    /// Whether a torn journal tail was found and truncated.
    pub torn_tail: bool,
}

/// Shared state behind every route handler.
pub struct AppState {
    /// Named-graph registry.
    pub graphs: GraphRegistry,
    /// Job store + worker pool.
    pub jobs: Arc<JobStore>,
    /// Write-ahead journal, when the service persists.
    pub journal: Option<Arc<Journal>>,
    /// What replay restored when this incarnation started.
    pub recovery: RecoverySummary,
    /// Service start time (for uptime reporting).
    pub started: Instant,
    /// Set by `POST /v1/admin/shutdown`; the daemon binary polls it.
    pub shutdown_requested: AtomicBool,
    metrics: OnceLock<Arc<ServiceMetrics>>,
}

impl AppState {
    /// The endpoint metrics collector (set once the router is built).
    pub fn metrics(&self) -> Option<&Arc<ServiceMetrics>> {
        self.metrics.get()
    }

    /// The full current state as a snapshot document.
    ///
    /// The sequence number is read BEFORE the state: anything journaled
    /// after it simply stays in the journal when this document is
    /// installed, and replaying those records over the (possibly newer)
    /// captured state is idempotent. The submit barrier closes the one
    /// path where a covered record's effect could still be invisible.
    pub fn snapshot_doc(&self) -> SnapshotDoc {
        let last_seq = self.journal.as_ref().map_or(0, |j| j.current_seq());
        self.jobs.submit_barrier();
        let graphs = self
            .graphs
            .list()
            .into_iter()
            .map(|entry| {
                let (graph, version) = entry.snapshot();
                SnapshotGraph {
                    id: entry.id,
                    name: entry.name.clone(),
                    source: entry.source.clone(),
                    n: graph.n(),
                    edges: graph.edges().collect(),
                    version,
                }
            })
            .collect();
        let jobs = self
            .jobs
            .list()
            .into_iter()
            .map(|job| {
                let info = job.info();
                SnapshotJob {
                    id: job.id,
                    request: job.request.clone(),
                    status: info.status,
                    outcome: info.outcome,
                    error: info.error,
                    mis: job.mis(),
                }
            })
            .collect();
        SnapshotDoc {
            last_seq,
            graphs,
            jobs,
        }
    }

    /// Writes a snapshot and truncates the journal.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the journal stays intact on error.
    pub fn install_snapshot(&self) -> io::Result<()> {
        match &self.journal {
            Some(journal) => journal.install_snapshot(&self.snapshot_doc()),
            None => Ok(()),
        }
    }

    /// Best-effort snapshot once enough journal records accumulated; called
    /// by handlers after successful mutations so steady-state load rotates
    /// the journal without an external trigger.
    pub fn maybe_snapshot(&self) {
        if let Some(journal) = &self.journal {
            // Claim the build so only one request thread pays for the
            // state capture; everyone else carries on serving.
            if journal.try_begin_snapshot() {
                let _ = self.install_snapshot();
                journal.finish_snapshot();
            }
        }
    }
}

/// A running graph-service daemon.
pub struct Service {
    state: Arc<AppState>,
    server: warp::Server,
}

impl Service {
    /// Starts the worker pool, builds the router + metrics, and binds the
    /// HTTP server. With [`ServiceConfig::data_dir`] set, the journal in
    /// that directory is replayed first: graphs come back at their last
    /// committed version, acknowledged-but-unfinished jobs re-queue, and
    /// jobs that were running at the crash surface as `Interrupted`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures and journal open failures.
    pub fn start(config: &ServiceConfig) -> io::Result<Service> {
        let (journal, recovered) = match &config.data_dir {
            Some(dir) => {
                let (journal, recovery) = Journal::open(dir)?;
                (Some(Arc::new(journal)), Some(recovery))
            }
            None => (None, None),
        };

        let graphs = GraphRegistry::new();
        let jobs = JobStore::start(config.workers, config.queue_capacity, journal.clone());
        let mut summary = RecoverySummary::default();
        if let Some(recovery) = recovered {
            summary.graphs = recovery.graphs.len();
            summary.jobs = recovery.jobs.len();
            summary.requeued = recovery.requeued().count();
            summary.interrupted = recovery.interrupted().count();
            summary.torn_tail = recovery.torn_tail;
            for g in recovery.graphs {
                graphs.restore(g.id, g.name, g.source, g.graph, g.version);
            }
            for job in recovery.jobs {
                let entry = graphs.get(job.request.graph);
                jobs.restore(job, entry);
            }
        }

        let state = Arc::new(AppState {
            graphs,
            jobs,
            journal,
            recovery: summary,
            started: Instant::now(),
            shutdown_requested: AtomicBool::new(false),
            metrics: OnceLock::new(),
        });
        let router = routes::build(&state);
        let metrics = Arc::new(ServiceMetrics::for_routes(&router.patterns()));
        assert!(
            state.metrics.set(Arc::clone(&metrics)).is_ok(),
            "metrics initialized twice"
        );
        let router = router.with_middleware(metrics);
        let server = warp::serve(router).bind(config.addr.as_str())?;
        Ok(Service { state, server })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The shared state (graphs, jobs, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// `true` once a client called `POST /v1/admin/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: drain the job pool (stop intake, cancel queued,
    /// finish running), snapshot the final state, then stop the HTTP server
    /// (event streams end once their jobs are terminal, so no connection
    /// can wedge this).
    pub fn shutdown(self) {
        self.state.jobs.drain();
        let _ = self.state.install_snapshot();
        self.server.shutdown();
    }

    /// Simulated hard crash, for fault injection: seal the journal (stale
    /// worker appends bounce), walk away from the pool without draining,
    /// and tear the listener down without waiting for in-flight requests.
    /// The data directory is left exactly as a process kill would leave it;
    /// a successor [`Service::start`] on the same directory recovers.
    pub fn crash(self) {
        if let Some(journal) = &self.state.journal {
            journal.seal();
        }
        self.state.jobs.abandon();
        self.server.abort();
    }
}
