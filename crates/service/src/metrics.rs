//! Per-endpoint request metrics, collected through the router's
//! [`warp::Middleware`] hook.
//!
//! Slots are pre-sized from the router's route table at startup, so the hot
//! path is a linear scan over ~a dozen entries plus a few relaxed atomic
//! updates — no locking on the request path.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::api::EndpointMetrics;

struct Slot {
    route: String,
    method: warp::Method,
    requests: AtomicU64,
    errors: AtomicU64,
    in_flight: AtomicU64,
    latency_sum: AtomicU64,
    latency_max: AtomicU64,
}

impl Slot {
    fn new(route: String, method: warp::Method) -> Slot {
        Slot {
            route,
            method,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latency_sum: AtomicU64::new(0),
            latency_max: AtomicU64::new(0),
        }
    }
}

/// Request counters for every registered route plus one `(unmatched)` slot.
pub struct ServiceMetrics {
    slots: Vec<Slot>,
}

impl ServiceMetrics {
    /// Builds one slot per `(method, pattern)` pair plus the unmatched slot.
    pub fn for_routes(routes: &[(warp::Method, String)]) -> ServiceMetrics {
        let mut slots: Vec<Slot> = routes
            .iter()
            .map(|(method, pattern)| Slot::new(pattern.clone(), *method))
            .collect();
        slots.push(Slot::new(warp::UNMATCHED.to_string(), warp::Method::Get));
        ServiceMetrics { slots }
    }

    fn slot(&self, pattern: &str, method: warp::Method) -> &Slot {
        self.slots
            .iter()
            .find(|s| s.route == pattern && (s.method == method || pattern == warp::UNMATCHED))
            .unwrap_or_else(|| self.slots.last().expect("unmatched slot always exists"))
    }

    /// Snapshot of all endpoint counters, in registration order.
    pub fn report(&self) -> Vec<EndpointMetrics> {
        self.slots
            .iter()
            .map(|slot| EndpointMetrics {
                route: slot.route.clone(),
                method: slot.method.as_str().to_string(),
                requests: slot.requests.load(Ordering::Relaxed),
                errors: slot.errors.load(Ordering::Relaxed),
                in_flight: slot.in_flight.load(Ordering::Relaxed),
                latency_sum_micros: slot.latency_sum.load(Ordering::Relaxed),
                latency_max_micros: slot.latency_max.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl warp::Middleware for ServiceMetrics {
    fn on_request(&self, pattern: &str, method: warp::Method) {
        let slot = self.slot(pattern, method);
        slot.requests.fetch_add(1, Ordering::Relaxed);
        slot.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    fn on_response(&self, pattern: &str, method: warp::Method, status: u16, elapsed_micros: u64) {
        let slot = self.slot(pattern, method);
        slot.in_flight.fetch_sub(1, Ordering::Relaxed);
        if status >= 400 {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.latency_sum
            .fetch_add(elapsed_micros, Ordering::Relaxed);
        slot.latency_max
            .fetch_max(elapsed_micros, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp::{Method, Middleware};

    #[test]
    fn counters_accumulate_per_endpoint() {
        let metrics = ServiceMetrics::for_routes(&[
            (Method::Get, "/v1/jobs".to_string()),
            (Method::Post, "/v1/jobs".to_string()),
        ]);
        metrics.on_request("/v1/jobs", Method::Get);
        metrics.on_response("/v1/jobs", Method::Get, 200, 120);
        metrics.on_request("/v1/jobs", Method::Post);
        metrics.on_response("/v1/jobs", Method::Post, 503, 40);
        metrics.on_request(warp::UNMATCHED, Method::Delete);
        metrics.on_response(warp::UNMATCHED, Method::Delete, 404, 5);

        let report = metrics.report();
        assert_eq!(report.len(), 3);
        let get = &report[0];
        assert_eq!((get.requests, get.errors, get.in_flight), (1, 0, 0));
        assert_eq!(get.latency_sum_micros, 120);
        assert_eq!(get.latency_max_micros, 120);
        let post = &report[1];
        assert_eq!((post.requests, post.errors), (1, 1));
        let unmatched = &report[2];
        assert_eq!(unmatched.route, warp::UNMATCHED);
        assert_eq!(unmatched.requests, 1);
    }

    #[test]
    fn in_flight_tracks_open_requests() {
        let metrics = ServiceMetrics::for_routes(&[(Method::Get, "/v1/metrics".to_string())]);
        metrics.on_request("/v1/metrics", Method::Get);
        assert_eq!(metrics.report()[0].in_flight, 1);
        metrics.on_response("/v1/metrics", Method::Get, 200, 1);
        assert_eq!(metrics.report()[0].in_flight, 0);
    }
}
