//! Write-ahead journal + snapshot persistence for the graph registry and
//! job store.
//!
//! The durability contract is "no acknowledged work is ever silently lost":
//! every handler that answers 2xx for a state mutation first appends a
//! record here and `fsync`s it, so a crash at any instant loses at most
//! requests that were never acknowledged. On restart, [`Journal::open`]
//! rebuilds the exact pre-crash state:
//!
//! * graphs are re-registered under their original ids at their last
//!   committed version (creates are replayed from the stored
//!   [`CreateGraphRequest`], patches from the stored
//!   [`PatchEdgesRequest`], version-guarded so replay is idempotent);
//! * jobs acknowledged but not yet started are re-queued;
//! * jobs that were running at the crash become [`JobStatus::Interrupted`]
//!   — terminal, with the original request retained so
//!   `POST /v1/jobs/:id/retry` can resubmit them.
//!
//! # On-disk format
//!
//! `journal.ndjson` is append-only, one record per line:
//!
//! ```text
//! <len> <crc32-hex> <json>\n
//! ```
//!
//! where `len` is the byte length of `<json>` and the CRC-32 (IEEE) covers
//! exactly those bytes. Replay stops at the first record that is truncated,
//! mis-framed, or fails its checksum — the torn tail a crash mid-append
//! leaves behind — and the file is truncated back to the last good record
//! before appending resumes.
//!
//! `snapshot.json` bounds journal growth: it captures the full state plus
//! the sequence number of the last record it covers, is written to a temp
//! file, fsynced, and atomically renamed; afterwards the journal is
//! truncated. Replay loads the snapshot first and skips any journal record
//! with `seq <= last_seq`, so a crash between rename and truncate replays
//! the overlapping records as no-ops.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use mis_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize, Value};

use crate::api::{CreateGraphRequest, JobOutcome, JobRequest, JobStatus, PatchEdgesRequest};

/// Journal file name inside the data directory.
pub const JOURNAL_FILE: &str = "journal.ndjson";

/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// How many appended records trigger an automatic snapshot.
pub const SNAPSHOT_INTERVAL: u64 = 512;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven — no external dependency.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One journaled state mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A graph was registered (`POST /v1/graphs` acknowledged with 201).
    GraphCreated {
        /// Registry id assigned to the graph.
        id: u64,
        /// Resolved display name.
        name: String,
        /// The original request — spec + seed regenerate the topology
        /// deterministically; uploads carry their edges verbatim.
        create: CreateGraphRequest,
    },
    /// A patch was applied (`PATCH /v1/graphs/:id/edges` acknowledged).
    GraphPatched {
        /// Registry id.
        id: u64,
        /// Version *after* this patch; replay applies the patch only when
        /// the recovered graph sits exactly one version behind.
        version: u64,
        /// The applied patch.
        patch: PatchEdgesRequest,
    },
    /// A graph was deleted (`DELETE /v1/graphs/:id` acknowledged).
    GraphDeleted {
        /// Registry id.
        id: u64,
    },
    /// A job was accepted (`POST /v1/jobs` acknowledged with 202).
    JobSubmitted {
        /// Job id.
        id: u64,
        /// The full request, kept for re-queueing and retry.
        request: JobRequest,
    },
    /// A worker picked the job up.
    JobStarted {
        /// Job id.
        id: u64,
    },
    /// The job reached a terminal state on this incarnation.
    JobFinished {
        /// Job id.
        id: u64,
        /// Terminal status (`Completed`, `Cancelled`, or `Failed`).
        status: JobStatus,
        /// Present for completed jobs.
        outcome: Option<JobOutcome>,
        /// Present for failed jobs.
        error: Option<String>,
        /// The final independent set for completed jobs.
        mis: Option<Vec<VertexId>>,
    },
}

fn field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, serde::Error> {
    serde::get_field(value, name)
}

fn optional<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    match value {
        Value::Object(fields) => fields
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, field)| field),
        _ => None,
    }
}

fn opt_from<T: Deserialize>(value: &Value, name: &str) -> Result<Option<T>, serde::Error> {
    match optional(value, name) {
        Some(Value::Null) | None => Ok(None),
        Some(v) => Ok(Some(T::from_value(v)?)),
    }
}

impl Serialize for Record {
    fn to_value(&self) -> Value {
        let (kind, mut fields) = match self {
            Record::GraphCreated { id, name, create } => (
                "graph_created",
                vec![
                    ("id".to_string(), id.to_value()),
                    ("name".to_string(), name.to_value()),
                    ("create".to_string(), create.to_value()),
                ],
            ),
            Record::GraphPatched { id, version, patch } => (
                "graph_patched",
                vec![
                    ("id".to_string(), id.to_value()),
                    ("version".to_string(), version.to_value()),
                    ("patch".to_string(), patch.to_value()),
                ],
            ),
            Record::GraphDeleted { id } => {
                ("graph_deleted", vec![("id".to_string(), id.to_value())])
            }
            Record::JobSubmitted { id, request } => (
                "job_submitted",
                vec![
                    ("id".to_string(), id.to_value()),
                    ("request".to_string(), request.to_value()),
                ],
            ),
            Record::JobStarted { id } => ("job_started", vec![("id".to_string(), id.to_value())]),
            Record::JobFinished {
                id,
                status,
                outcome,
                error,
                mis,
            } => (
                "job_finished",
                vec![
                    ("id".to_string(), id.to_value()),
                    ("status".to_string(), status.to_value()),
                    ("outcome".to_string(), outcome.to_value()),
                    ("error".to_string(), error.to_value()),
                    ("mis".to_string(), mis.to_value()),
                ],
            ),
        };
        fields.insert(0, ("type".to_string(), Value::Str(kind.to_string())));
        Value::Object(fields)
    }
}

impl Deserialize for Record {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let kind = String::from_value(field(value, "type")?)?;
        let id = u64::from_value(field(value, "id")?)?;
        match kind.as_str() {
            "graph_created" => Ok(Record::GraphCreated {
                id,
                name: String::from_value(field(value, "name")?)?,
                create: CreateGraphRequest::from_value(field(value, "create")?)?,
            }),
            "graph_patched" => Ok(Record::GraphPatched {
                id,
                version: u64::from_value(field(value, "version")?)?,
                patch: PatchEdgesRequest::from_value(field(value, "patch")?)?,
            }),
            "graph_deleted" => Ok(Record::GraphDeleted { id }),
            "job_submitted" => Ok(Record::JobSubmitted {
                id,
                request: JobRequest::from_value(field(value, "request")?)?,
            }),
            "job_started" => Ok(Record::JobStarted { id }),
            "job_finished" => Ok(Record::JobFinished {
                id,
                status: JobStatus::from_value(field(value, "status")?)?,
                outcome: opt_from(value, "outcome")?,
                error: opt_from(value, "error")?,
                mis: opt_from(value, "mis")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown journal record type '{other}'"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Recovered state
// ---------------------------------------------------------------------------

/// A graph rebuilt from the snapshot + journal, ready for
/// `GraphRegistry::restore`.
#[derive(Debug)]
pub struct RecoveredGraph {
    /// Original registry id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Human-readable source label.
    pub source: String,
    /// Topology with every committed patch applied.
    pub graph: Graph,
    /// Last committed version.
    pub version: u64,
}

/// A job rebuilt from the snapshot + journal.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// Original job id.
    pub id: u64,
    /// The acknowledged request.
    pub request: JobRequest,
    /// Status after recovery post-processing (`Running` has already been
    /// rewritten to `Interrupted`).
    pub status: JobStatus,
    /// Outcome for completed jobs.
    pub outcome: Option<JobOutcome>,
    /// Error for failed/interrupted jobs.
    pub error: Option<String>,
    /// Final MIS for completed jobs.
    pub mis: Option<Vec<VertexId>>,
}

/// Everything [`Journal::open`] rebuilt, plus replay diagnostics.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Graphs in id order.
    pub graphs: Vec<RecoveredGraph>,
    /// Jobs in id order.
    pub jobs: Vec<RecoveredJob>,
    /// Journal records replayed (after snapshot skip).
    pub replayed: usize,
    /// Whether a torn tail was found and truncated.
    pub torn_tail: bool,
}

impl Recovery {
    /// Jobs that must be re-enqueued (acknowledged, never started).
    pub fn requeued(&self) -> impl Iterator<Item = &RecoveredJob> {
        self.jobs.iter().filter(|j| j.status == JobStatus::Queued)
    }

    /// Jobs that were running at the crash.
    pub fn interrupted(&self) -> impl Iterator<Item = &RecoveredJob> {
        self.jobs
            .iter()
            .filter(|j| j.status == JobStatus::Interrupted)
    }
}

/// In-memory replay model: graphs as (meta, materialized graph), jobs as
/// recovered rows.
#[derive(Default)]
struct ReplayState {
    graphs: Vec<RecoveredGraph>,
    jobs: Vec<RecoveredJob>,
}

impl ReplayState {
    fn apply(&mut self, record: Record) -> Result<(), String> {
        match record {
            Record::GraphCreated { id, name, create } => {
                if self.graphs.iter().any(|g| g.id == id) {
                    return Ok(()); // idempotent: snapshot already has it
                }
                let graph = create.materialize_source()?;
                self.graphs.push(RecoveredGraph {
                    id,
                    name,
                    source: create.source.label(),
                    graph,
                    version: 1,
                });
                Ok(())
            }
            Record::GraphPatched { id, version, patch } => {
                let Some(entry) = self.graphs.iter_mut().find(|g| g.id == id) else {
                    return Err(format!("patch for unknown graph {id}"));
                };
                if entry.version >= version {
                    return Ok(()); // snapshot already covers this patch
                }
                if version != entry.version + 1 {
                    return Err(format!(
                        "patch gap on graph {id}: at v{} but record is v{version}",
                        entry.version
                    ));
                }
                let (graph, _) = entry
                    .graph
                    .apply_delta(&patch.delta())
                    .map_err(|e| format!("replaying patch v{version} on graph {id}: {e}"))?;
                entry.graph = graph;
                entry.version = version;
                Ok(())
            }
            Record::GraphDeleted { id } => {
                self.graphs.retain(|g| g.id != id);
                Ok(())
            }
            Record::JobSubmitted { id, request } => {
                if self.jobs.iter().any(|j| j.id == id) {
                    return Ok(());
                }
                self.jobs.push(RecoveredJob {
                    id,
                    request,
                    status: JobStatus::Queued,
                    outcome: None,
                    error: None,
                    mis: None,
                });
                Ok(())
            }
            Record::JobStarted { id } => {
                if let Some(job) = self.jobs.iter_mut().find(|j| j.id == id) {
                    if !job.status.is_terminal() {
                        job.status = JobStatus::Running;
                    }
                }
                Ok(())
            }
            Record::JobFinished {
                id,
                status,
                outcome,
                error,
                mis,
            } => {
                if let Some(job) = self.jobs.iter_mut().find(|j| j.id == id) {
                    job.status = status;
                    job.outcome = outcome;
                    job.error = error;
                    job.mis = mis;
                }
                Ok(())
            }
        }
    }
}

impl CreateGraphRequest {
    fn materialize_source(&self) -> Result<Graph, String> {
        self.source.materialize(self.seed)
    }
}

// ---------------------------------------------------------------------------
// The journal itself
// ---------------------------------------------------------------------------

/// Append-only WAL with snapshot rotation. See the module docs for the
/// format and recovery semantics.
pub struct Journal {
    dir: PathBuf,
    file: Mutex<File>,
    seq: AtomicU64,
    since_snapshot: AtomicU64,
    sealed: AtomicBool,
    /// Seq covered by the last installed snapshot. Doubles as the install
    /// mutex: held across the whole build-tmp/rename/trim sequence so
    /// concurrent installs can never interleave writes to the tmp file,
    /// and a stale doc racing a newer one is dropped instead of rolling
    /// the snapshot backwards. Lock order: `snapshot_gate` before `file`.
    snapshot_gate: Mutex<u64>,
    /// Claimed by [`try_begin_snapshot`](Journal::try_begin_snapshot) so
    /// only one thread at a time pays for building a snapshot document.
    snapshot_in_flight: AtomicBool,
}

impl Journal {
    /// Opens (or creates) the journal in `dir`, replaying any snapshot and
    /// journal found there. Returns the journal ready for appends plus the
    /// recovered state.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating the directory or files. Corrupt
    /// records never error: replay stops at the first bad record (torn
    /// tail) and the file is truncated back to the last good byte.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Journal, Recovery)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut state = ReplayState::default();
        let mut last_seq = 0u64;

        // 1. Snapshot, if any. A snapshot that fails to parse is ignored
        //    (it is only ever written atomically, so this means external
        //    corruption; the journal may still recover a prefix).
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if let Ok(text) = fs::read_to_string(&snapshot_path) {
            if let Ok(snap) = serde_json::from_str::<SnapshotDoc>(&text) {
                last_seq = snap.last_seq;
                state = snap.into_state();
            }
        }

        // 2. Journal replay with torn-tail truncation.
        let journal_path = dir.join(JOURNAL_FILE);
        let mut replayed = 0usize;
        let mut torn_tail = false;
        let mut good_bytes = 0u64;
        let mut max_seq = last_seq;
        if let Ok(file) = File::open(&journal_path) {
            let mut reader = BufReader::new(file);
            let mut line = String::new();
            loop {
                line.clear();
                let n = match read_journal_line(&mut reader, &mut line) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(_) => {
                        torn_tail = true;
                        break;
                    }
                };
                match parse_frame(&line) {
                    Some((seq, record)) => {
                        max_seq = max_seq.max(seq);
                        if seq > last_seq {
                            // A semantically impossible record (e.g. a patch
                            // for a graph deleted by a later-corrupted
                            // prefix) is skipped rather than fatal: replay
                            // is best-effort past it.
                            if state.apply(record).is_ok() {
                                replayed += 1;
                            }
                        }
                        good_bytes += n as u64;
                    }
                    None => {
                        torn_tail = true;
                        break;
                    }
                }
            }
        }

        // 3. Truncate away the torn tail so appends resume cleanly framed.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&journal_path)?;
        let actual_len = file.metadata()?.len();
        if torn_tail || good_bytes < actual_len {
            file.set_len(good_bytes)?;
        }
        let mut file = file;
        file.seek(SeekFrom::End(0))?;

        // 4. Post-process: running-at-crash becomes Interrupted.
        for job in &mut state.jobs {
            if job.status == JobStatus::Running {
                job.status = JobStatus::Interrupted;
                job.error = Some(
                    "interrupted: the service crashed while this job was running; \
                     POST /v1/jobs/:id/retry to resubmit"
                        .to_string(),
                );
            }
        }
        state.graphs.sort_by_key(|g| g.id);
        state.jobs.sort_by_key(|j| j.id);

        let journal = Journal {
            dir,
            file: Mutex::new(file),
            seq: AtomicU64::new(max_seq),
            since_snapshot: AtomicU64::new(0),
            sealed: AtomicBool::new(false),
            snapshot_gate: Mutex::new(last_seq),
            snapshot_in_flight: AtomicBool::new(false),
        };
        let recovery = Recovery {
            graphs: state.graphs,
            jobs: state.jobs,
            replayed,
            torn_tail,
        };
        Ok((journal, recovery))
    }

    /// Appends one record and `fsync`s it. Returns only after the bytes are
    /// durable — callers acknowledge the client strictly after this.
    ///
    /// # Errors
    ///
    /// Fails if the journal has been [sealed](Journal::seal) or on I/O
    /// errors; the caller must NOT acknowledge the mutation in that case.
    pub fn append(&self, record: &Record) -> io::Result<u64> {
        if self.sealed.load(Ordering::SeqCst) {
            return Err(io::Error::other("journal sealed"));
        }
        let mut file = crate::sync::lock(&self.file);
        // Re-check under the lock: `seal` waits on this lock as a barrier,
        // so no append may start writing once it has returned.
        if self.sealed.load(Ordering::SeqCst) {
            return Err(io::Error::other("journal sealed"));
        }
        // Sequence numbers are assigned under the file lock so on-disk
        // order matches sequence order.
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let envelope = Value::Object(vec![
            ("seq".to_string(), seq.to_value()),
            ("record".to_string(), record.to_value()),
        ]);
        let json = serde_json::to_string(&envelope)
            .map_err(|e| io::Error::other(format!("journal encode: {e}")))?;
        let line = format!("{} {:08x} {}\n", json.len(), crc32(json.as_bytes()), json);
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        self.since_snapshot.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Whether enough records have accumulated to warrant a snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.since_snapshot.load(Ordering::Relaxed) >= SNAPSHOT_INTERVAL
    }

    /// Claims the right to build the next snapshot document. Returns
    /// `true` when one is [due](Journal::snapshot_due) and no other thread
    /// is already building one — the claim must be released with
    /// [`finish_snapshot`](Journal::finish_snapshot). Without this claim,
    /// every request thread that sees `snapshot_due()` would serialize a
    /// full state capture of its own.
    pub fn try_begin_snapshot(&self) -> bool {
        self.snapshot_due()
            && self
                .snapshot_in_flight
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
    }

    /// Releases the claim taken by [`try_begin_snapshot`](Journal::try_begin_snapshot).
    pub fn finish_snapshot(&self) {
        self.snapshot_in_flight.store(false, Ordering::SeqCst);
    }

    /// Stops all future appends — every later [`append`](Journal::append)
    /// fails. Models the instant of a crash for fault injection: writes
    /// from stale worker threads of a dead incarnation must not land in a
    /// file now owned by its successor. Blocks until any in-flight append
    /// or snapshot install has finished, so when `seal` returns the files
    /// are quiescent and safe for a successor to reopen.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
        // Barriers, in install lock order: an install past its sealed
        // check commits before we return; an append past its check has
        // written before we return.
        drop(crate::sync::lock(&self.snapshot_gate));
        drop(crate::sync::lock(&self.file));
    }

    /// Current sequence number (the seq of the most recent append).
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Writes `snapshot` atomically, then trims the journal down to the
    /// records the snapshot does NOT cover (`seq > snapshot.last_seq`).
    /// Records appended after the document was captured are preserved
    /// verbatim — an install must never discard an acknowledged mutation
    /// that only the journal knows about.
    ///
    /// Crash-ordering: snapshot tmp write + fsync, trimmed journal tmp
    /// write + fsync, snapshot rename, journal rename. A crash between
    /// the renames leaves the full journal next to the new snapshot;
    /// replay skips the records the snapshot already covers by seq.
    ///
    /// Concurrent installs serialize on `snapshot_gate`, and a document
    /// older than the installed one is dropped (Ok) rather than rolling
    /// the snapshot backwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed snapshot leaves the journal intact.
    pub fn install_snapshot(&self, snapshot: &SnapshotDoc) -> io::Result<()> {
        let mut installed = crate::sync::lock(&self.snapshot_gate);
        if self.sealed.load(Ordering::SeqCst) {
            return Err(io::Error::other("journal sealed"));
        }
        if snapshot.last_seq < *installed {
            return Ok(()); // raced a newer install; nothing to do
        }
        let json = serde_json::to_string(&snapshot.to_value())
            .map_err(|e| io::Error::other(format!("snapshot encode: {e}")))?;
        let tmp = self.dir.join("snapshot.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_data()?;
        }
        // Under the file lock (no appends): split the journal at the last
        // record the snapshot covers and carry everything after it over
        // into the replacement journal.
        let mut file = crate::sync::lock(&self.file);
        file.seek(SeekFrom::Start(0))?;
        let mut cut = 0u64;
        {
            let mut reader = BufReader::new(&mut *file);
            let mut line = String::new();
            loop {
                line.clear();
                let n = match read_journal_line(&mut reader, &mut line) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(_) => break,
                };
                match parse_frame(&line) {
                    Some((seq, _)) if seq <= snapshot.last_seq => cut += n as u64,
                    // Anything unparseable (or newer) stays in the journal.
                    _ => break,
                }
            }
        }
        file.seek(SeekFrom::Start(cut))?;
        let mut tail = Vec::new();
        file.read_to_end(&mut tail)?;
        let journal_tmp = self.dir.join("journal.ndjson.tmp");
        let mut replacement = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&journal_tmp)?;
        replacement.write_all(&tail)?;
        replacement.sync_data()?;
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        fs::rename(&journal_tmp, self.dir.join(JOURNAL_FILE))?;
        replacement.seek(SeekFrom::End(0))?;
        *file = replacement;
        drop(file);
        *installed = snapshot.last_seq;
        self.since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }
}

/// Reads one line (including the trailing newline) into `line`; a final
/// line without a newline is a torn tail and errors.
fn read_journal_line(reader: &mut impl BufRead, line: &mut String) -> io::Result<usize> {
    let mut bytes = Vec::new();
    let n = reader.read_until(b'\n', &mut bytes)?;
    if n == 0 {
        return Ok(0);
    }
    if bytes.last() != Some(&b'\n') {
        return Err(io::Error::other("torn tail: unterminated line"));
    }
    *line = String::from_utf8(bytes).map_err(|_| io::Error::other("torn tail: non-UTF-8"))?;
    Ok(n)
}

/// Parses `<len> <crc32-hex> <json>\n`, verifying length and checksum.
/// Returns `None` for any mis-framed or corrupt line.
fn parse_frame(line: &str) -> Option<(u64, Record)> {
    let body = line.strip_suffix('\n')?;
    let (len_str, rest) = body.split_once(' ')?;
    let (crc_str, json) = rest.split_once(' ')?;
    let len: usize = len_str.parse().ok()?;
    if json.len() != len {
        return None;
    }
    let crc = u32::from_str_radix(crc_str, 16).ok()?;
    if crc32(json.as_bytes()) != crc {
        return None;
    }
    let envelope: Value = serde_json::from_str(json).ok()?;
    let seq = u64::from_value(serde::get_field(&envelope, "seq").ok()?).ok()?;
    let record = Record::from_value(serde::get_field(&envelope, "record").ok()?).ok()?;
    Some((seq, record))
}

// ---------------------------------------------------------------------------
// Snapshot document
// ---------------------------------------------------------------------------

/// One graph in a snapshot: topology stored as explicit edges so recovery
/// is exact regardless of how the graph was originally created.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotGraph {
    /// Registry id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Human-readable source label.
    pub source: String,
    /// Vertex count.
    pub n: usize,
    /// Current edges.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Last committed version.
    pub version: u64,
}

/// One job in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotJob {
    /// Job id.
    pub id: u64,
    /// The acknowledged request.
    pub request: JobRequest,
    /// Status at snapshot time.
    pub status: JobStatus,
    /// Outcome for completed jobs.
    pub outcome: Option<JobOutcome>,
    /// Error for failed jobs.
    pub error: Option<String>,
    /// Final MIS for completed jobs.
    pub mis: Option<Vec<VertexId>>,
}

/// The full snapshot file contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDoc {
    /// Sequence number of the last journal record this snapshot covers.
    pub last_seq: u64,
    /// Graph registry contents.
    pub graphs: Vec<SnapshotGraph>,
    /// Job store contents (all statuses — queued/running jobs resume their
    /// lifecycle through journal replay on top of this).
    pub jobs: Vec<SnapshotJob>,
}

impl SnapshotDoc {
    fn into_state(self) -> ReplayState {
        let graphs = self
            .graphs
            .into_iter()
            .filter_map(|g| {
                let graph = Graph::from_edges(g.n, g.edges.iter().copied()).ok()?;
                Some(RecoveredGraph {
                    id: g.id,
                    name: g.name,
                    source: g.source,
                    graph,
                    version: g.version,
                })
            })
            .collect();
        let jobs = self
            .jobs
            .into_iter()
            .map(|j| RecoveredJob {
                id: j.id,
                request: j.request,
                status: j.status,
                outcome: j.outcome,
                error: j.error,
                mis: j.mis,
            })
            .collect();
        ReplayState { graphs, jobs }
    }
}

impl Serialize for SnapshotGraph {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), self.id.to_value()),
            ("name".to_string(), self.name.to_value()),
            ("source".to_string(), self.source.to_value()),
            ("n".to_string(), self.n.to_value()),
            ("edges".to_string(), self.edges.to_value()),
            ("version".to_string(), self.version.to_value()),
        ])
    }
}

impl Deserialize for SnapshotGraph {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(SnapshotGraph {
            id: u64::from_value(field(value, "id")?)?,
            name: String::from_value(field(value, "name")?)?,
            source: String::from_value(field(value, "source")?)?,
            n: usize::from_value(field(value, "n")?)?,
            edges: Vec::from_value(field(value, "edges")?)?,
            version: u64::from_value(field(value, "version")?)?,
        })
    }
}

impl Serialize for SnapshotJob {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), self.id.to_value()),
            ("request".to_string(), self.request.to_value()),
            ("status".to_string(), self.status.to_value()),
            ("outcome".to_string(), self.outcome.to_value()),
            ("error".to_string(), self.error.to_value()),
            ("mis".to_string(), self.mis.to_value()),
        ])
    }
}

impl Deserialize for SnapshotJob {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(SnapshotJob {
            id: u64::from_value(field(value, "id")?)?,
            request: JobRequest::from_value(field(value, "request")?)?,
            status: JobStatus::from_value(field(value, "status")?)?,
            outcome: opt_from(value, "outcome")?,
            error: opt_from(value, "error")?,
            mis: opt_from(value, "mis")?,
        })
    }
}

impl Serialize for SnapshotDoc {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("last_seq".to_string(), self.last_seq.to_value()),
            ("graphs".to_string(), self.graphs.to_value()),
            ("jobs".to_string(), self.jobs.to_value()),
        ])
    }
}

impl Deserialize for SnapshotDoc {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(SnapshotDoc {
            last_seq: u64::from_value(field(value, "last_seq")?)?,
            graphs: Vec::from_value(field(value, "graphs")?)?,
            jobs: Vec::from_value(field(value, "jobs")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GraphSource;
    use mis_sim::spec::GraphSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mis-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn upload(n: usize, edges: Vec<(VertexId, VertexId)>) -> CreateGraphRequest {
        CreateGraphRequest {
            name: None,
            source: GraphSource::Edges { n, edges },
            seed: 0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_dir_opens_clean() {
        let dir = tmpdir("empty");
        let (journal, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.graphs.is_empty());
        assert!(recovery.jobs.is_empty());
        assert!(!recovery.torn_tail);
        assert_eq!(journal.current_seq(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_replay_to_exact_state() {
        let dir = tmpdir("replay");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 1,
                    name: "path".into(),
                    create: upload(3, vec![(0, 1), (1, 2)]),
                })
                .unwrap();
            journal
                .append(&Record::GraphPatched {
                    id: 1,
                    version: 2,
                    patch: PatchEdgesRequest {
                        add: vec![(0, 2)],
                        ..Default::default()
                    },
                })
                .unwrap();
            journal
                .append(&Record::JobSubmitted {
                    id: 1,
                    request: JobRequest::new(1, "two-state"),
                })
                .unwrap();
            journal
                .append(&Record::JobSubmitted {
                    id: 2,
                    request: JobRequest::new(1, "three-color"),
                })
                .unwrap();
            journal.append(&Record::JobStarted { id: 1 }).unwrap();
        }
        let (_, recovery) = Journal::open(&dir).unwrap();
        assert_eq!(recovery.graphs.len(), 1);
        let g = &recovery.graphs[0];
        assert_eq!((g.id, g.version, g.graph.n(), g.graph.m()), (1, 2, 3, 3));
        assert!(g.graph.has_edge(0, 2));
        assert_eq!(recovery.jobs.len(), 2);
        // Started-but-unfinished job 1 -> Interrupted; job 2 re-queues.
        assert_eq!(recovery.jobs[0].status, JobStatus::Interrupted);
        assert_eq!(recovery.jobs[1].status, JobStatus::Queued);
        assert_eq!(recovery.requeued().count(), 1);
        assert_eq!(recovery.interrupted().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generated_graphs_replay_from_spec_and_seed() {
        let dir = tmpdir("spec");
        let create = CreateGraphRequest {
            name: Some("g".into()),
            source: GraphSource::Spec(GraphSpec::Gnp { n: 40, p: 0.1 }),
            seed: 7,
        };
        let expected = create.source.materialize(7).unwrap();
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 3,
                    name: "g".into(),
                    create,
                })
                .unwrap();
        }
        let (_, recovery) = Journal::open(&dir).unwrap();
        let g = &recovery.graphs[0];
        assert_eq!((g.graph.n(), g.graph.m()), (expected.n(), expected.m()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_keeps_the_prefix() {
        let dir = tmpdir("torn");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 1,
                    name: "a".into(),
                    create: upload(2, vec![(0, 1)]),
                })
                .unwrap();
            journal.append(&Record::JobStarted { id: 9 }).unwrap();
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"999 deadbeef {\"seq\":3,\"rec").unwrap();
        drop(f);

        let (journal, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.graphs.len(), 1);
        // The tail was truncated: appends resume and a fresh replay sees
        // a clean file.
        journal.append(&Record::GraphDeleted { id: 1 }).unwrap();
        drop(journal);
        let (_, recovery) = Journal::open(&dir).unwrap();
        assert!(!recovery.torn_tail);
        assert!(recovery.graphs.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_the_bad_record() {
        let dir = tmpdir("crc");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 1,
                    name: "a".into(),
                    create: upload(2, vec![(0, 1)]),
                })
                .unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 2,
                    name: "b".into(),
                    create: upload(2, vec![(0, 1)]),
                })
                .unwrap();
        }
        // Flip one byte inside the second record's JSON.
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last_quarter = bytes.len() - bytes.len() / 4;
        bytes[last_quarter] ^= 0x20;
        fs::write(&path, &bytes).unwrap();

        let (_, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.graphs.len(), 1);
        assert_eq!(recovery.graphs[0].id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotates_the_journal_and_replays_with_seq_skip() {
        let dir = tmpdir("snap");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 1,
                    name: "a".into(),
                    create: upload(3, vec![(0, 1)]),
                })
                .unwrap();
            journal
                .append(&Record::GraphPatched {
                    id: 1,
                    version: 2,
                    patch: PatchEdgesRequest {
                        add: vec![(1, 2)],
                        ..Default::default()
                    },
                })
                .unwrap();
            let snapshot = SnapshotDoc {
                last_seq: journal.current_seq(),
                graphs: vec![SnapshotGraph {
                    id: 1,
                    name: "a".into(),
                    source: "upload(n=3,m=1)".into(),
                    n: 3,
                    edges: vec![(0, 1), (1, 2)],
                    version: 2,
                }],
                jobs: Vec::new(),
            };
            journal.install_snapshot(&snapshot).unwrap();
            assert_eq!(fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), 0);
            // Appends after the snapshot land in the truncated journal.
            journal
                .append(&Record::GraphPatched {
                    id: 1,
                    version: 3,
                    patch: PatchEdgesRequest {
                        add: vec![(0, 2)],
                        ..Default::default()
                    },
                })
                .unwrap();
        }
        let (journal, recovery) = Journal::open(&dir).unwrap();
        let g = &recovery.graphs[0];
        assert_eq!((g.version, g.graph.m()), (3, 3));
        // Sequence numbering continues past the snapshot.
        assert_eq!(journal.current_seq(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_install_preserves_records_appended_after_capture() {
        let dir = tmpdir("snap-race");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal
                .append(&Record::GraphCreated {
                    id: 1,
                    name: "a".into(),
                    create: upload(3, vec![(0, 1)]),
                })
                .unwrap();
            // Capture the snapshot document *now* (covers seq 1)...
            let snapshot = SnapshotDoc {
                last_seq: journal.current_seq(),
                graphs: vec![SnapshotGraph {
                    id: 1,
                    name: "a".into(),
                    source: "upload(n=3,m=1)".into(),
                    n: 3,
                    edges: vec![(0, 1)],
                    version: 1,
                }],
                jobs: Vec::new(),
            };
            // ...then let more acknowledged mutations land before the
            // install runs, as concurrent request threads will.
            journal
                .append(&Record::GraphPatched {
                    id: 1,
                    version: 2,
                    patch: PatchEdgesRequest {
                        add: vec![(1, 2)],
                        ..Default::default()
                    },
                })
                .unwrap();
            journal
                .append(&Record::JobSubmitted {
                    id: 9,
                    request: JobRequest::new(1, "two-state"),
                })
                .unwrap();
            journal.install_snapshot(&snapshot).unwrap();
            // The trimmed journal must still hold the two uncovered records.
            assert!(fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len() > 0);
        }
        let (journal, recovery) = Journal::open(&dir).unwrap();
        let g = &recovery.graphs[0];
        assert_eq!((g.version, g.graph.m()), (2, 2));
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].id, 9);
        assert_eq!(journal.current_seq(), 3);
        // A stale document must not roll the snapshot backwards.
        journal.install_snapshot(&SnapshotDoc::default()).unwrap();
        let (_, recovery) = Journal::open(&dir).unwrap();
        assert_eq!(recovery.graphs.len(), 1);
        assert_eq!(recovery.jobs.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_journal_rejects_appends() {
        let dir = tmpdir("seal");
        let (journal, _) = Journal::open(&dir).unwrap();
        journal.append(&Record::JobStarted { id: 1 }).unwrap();
        journal.seal();
        assert!(journal.append(&Record::JobStarted { id: 2 }).is_err());
        assert!(journal.install_snapshot(&SnapshotDoc::default()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_round_trips() {
        let records = vec![
            Record::GraphCreated {
                id: 1,
                name: "x".into(),
                create: upload(2, vec![(0, 1)]),
            },
            Record::GraphPatched {
                id: 1,
                version: 2,
                patch: PatchEdgesRequest {
                    detach: vec![0],
                    ..Default::default()
                },
            },
            Record::GraphDeleted { id: 1 },
            Record::JobSubmitted {
                id: 4,
                request: JobRequest::new(1, "two-state"),
            },
            Record::JobStarted { id: 4 },
            Record::JobFinished {
                id: 4,
                status: JobStatus::Completed,
                outcome: None,
                error: None,
                mis: Some(vec![0, 2]),
            },
        ];
        for record in records {
            let json = serde_json::to_string(&record.to_value()).unwrap();
            let value: Value = serde_json::from_str(&json).unwrap();
            assert_eq!(Record::from_value(&value).unwrap(), record);
        }
    }
}
