//! HTTP route handlers wiring the registry, job store, and metrics into a
//! `warp` router.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mis_core::AlgorithmConfig;
use mis_graph::Graph;
use mis_sim::builtin_registry;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use warp::{PathParams, Request, Response, Router};

use crate::api::{
    AlgorithmInfo, ApiError, CreateGraphRequest, JobRequest, JobStatus, MetricsReport,
    PatchEdgesRequest, PatchResponse,
};
use crate::jobs::{ndjson_stream, SubmitError};
use crate::journal::Record;
use crate::service::AppState;

/// `Retry-After` seconds suggested on shed-load (429) responses.
const RETRY_AFTER_SHED: u64 = 1;
/// `Retry-After` seconds suggested on unavailable (503) responses.
const RETRY_AFTER_UNAVAILABLE: u64 = 5;

fn json<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => error(500, format!("serialization failed: {e}")),
    }
}

fn error(status: u16, message: impl Into<String>) -> Response {
    ApiError {
        status,
        message: message.into(),
        retry_after: None,
    }
    .into_response()
}

fn submit_error(e: SubmitError) -> Response {
    match e {
        SubmitError::Draining => {
            ApiError::unavailable(e.to_string(), RETRY_AFTER_UNAVAILABLE).into_response()
        }
        SubmitError::QueueFull { .. } => {
            ApiError::too_many_requests(e.to_string(), RETRY_AFTER_SHED).into_response()
        }
        SubmitError::UnknownAlgorithm(_) => {
            ApiError::bad_request(format!("{e}; see GET /v1/algorithms")).into_response()
        }
        SubmitError::Persistence(_) => {
            ApiError::unavailable(e.to_string(), RETRY_AFTER_UNAVAILABLE).into_response()
        }
    }
}

/// Journals `record` (fsyncing it) strictly before the caller acknowledges
/// the mutation; `Err` is the 503 the handler must answer with instead.
fn journal_ack(state: &AppState, record: Record) -> Result<(), Response> {
    match &state.journal {
        Some(journal) => journal.append(&record).map(|_| ()).map_err(|e| {
            ApiError::unavailable(
                format!("persistence unavailable: {e}"),
                RETRY_AFTER_UNAVAILABLE,
            )
            .into_response()
        }),
        None => Ok(()),
    }
}

fn parse_body<T: Deserialize>(request: &Request) -> Result<T, Response> {
    let text = request
        .text()
        .map_err(|_| error(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| error(400, format!("invalid request body: {e}")))
}

fn graph_id(params: &PathParams) -> Result<u64, Response> {
    params.id("id").ok_or_else(|| error(400, "invalid id"))
}

/// Capability metadata for every registry algorithm, derived by probing one
/// tiny instance per factory (the flags live on instances, not factories).
pub fn algorithm_catalog() -> Vec<AlgorithmInfo> {
    let probe_graph = Graph::from_edges(2, [(0, 1)]).expect("probe graph");
    let config = AlgorithmConfig {
        init: mis_core::init::InitStrategy::Random,
        execution: mis_core::ExecutionMode::Sequential,
        strategy: mis_core::RoundStrategy::Auto,
        counter_seed: 0,
    };
    builtin_registry()
        .factories()
        .map(|factory| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
            let instance = factory.init(&probe_graph, &config, &mut rng);
            AlgorithmInfo {
                key: factory.key().to_string(),
                description: factory.description().to_string(),
                communication_model: factory.communication_model().label().to_string(),
                supports_topology_change: instance.supports_topology_change(),
                supports_parallel: instance.supports_parallel(),
                supports_partial_activation: instance.supports_partial_activation(),
                supports_trace: instance.supports_trace(),
            }
        })
        .collect()
}

/// Builds the full route table over `state` (middleware is attached by the
/// caller once metrics exist).
pub fn build(state: &Arc<AppState>) -> Router {
    let mut router = Router::new();

    // --- graphs -----------------------------------------------------------
    let s = Arc::clone(state);
    router = router.post("/v1/graphs", move |req, _| {
        let body: CreateGraphRequest = match parse_body(req) {
            Ok(body) => body,
            Err(resp) => return resp,
        };
        let graph = match body.source.materialize(body.seed) {
            Ok(graph) => graph,
            Err(e) => return error(400, format!("invalid graph: {e}")),
        };
        let name = body.name.clone().unwrap_or_else(|| body.source.label());
        let entry = s.graphs.insert(name, body.source.label(), graph);
        let record = Record::GraphCreated {
            id: entry.id,
            name: entry.name.clone(),
            create: body,
        };
        if let Err(resp) = journal_ack(&s, record) {
            // Never acknowledge what the journal did not take.
            s.graphs.remove(entry.id);
            return resp;
        }
        s.maybe_snapshot();
        json(201, &entry.info())
    });

    let s = Arc::clone(state);
    router = router.get("/v1/graphs", move |_, _| {
        let infos: Vec<_> = s.graphs.list().iter().map(|e| e.info()).collect();
        json(200, &infos)
    });

    let s = Arc::clone(state);
    router = router.get("/v1/graphs/:id", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        match s.graphs.get(id) {
            Some(entry) => json(200, &entry.info()),
            None => error(404, format!("no graph {id}")),
        }
    });

    let s = Arc::clone(state);
    router = router.delete("/v1/graphs/:id", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        match s.graphs.remove(id) {
            Some(_) => {
                if let Err(resp) = journal_ack(&s, Record::GraphDeleted { id }) {
                    return resp;
                }
                s.maybe_snapshot();
                Response::new(204)
            }
            None => error(404, format!("no graph {id}")),
        }
    });

    let s = Arc::clone(state);
    router = router.patch("/v1/graphs/:id/edges", move |req, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        let body: PatchEdgesRequest = match parse_body(req) {
            Ok(body) => body,
            Err(resp) => return resp,
        };
        if body.is_empty() {
            return error(400, "empty patch: nothing to apply");
        }
        let delta = body.delta();
        let (committed, version) = match s.graphs.apply_delta(id, &delta) {
            None => return error(404, format!("no graph {id}")),
            Some(Err(e)) => return error(400, format!("invalid delta: {e}")),
            Some(Ok(applied)) => applied,
        };
        let record = Record::GraphPatched {
            id,
            version,
            patch: body,
        };
        if let Err(resp) = journal_ack(&s, record) {
            return resp;
        }
        s.maybe_snapshot();
        // Forward the delta to every live job on this graph whose snapshot
        // predates the patch; jobs whose algorithm cannot follow topology
        // changes are counted as skipped.
        let mut notified = 0;
        let mut skipped = 0;
        for job in s.jobs.jobs_on_graph(id) {
            match job.push_delta(&delta, version) {
                Some(true) => notified += 1,
                Some(false) => skipped += 1,
                None => {}
            }
        }
        json(
            200,
            &PatchResponse {
                graph: id,
                version,
                old_n: committed.old_n,
                new_n: committed.new_n,
                inserted: committed.inserted.len(),
                removed: committed.removed.len(),
                jobs_notified: notified,
                jobs_skipped: skipped,
            },
        )
    });

    // --- algorithms -------------------------------------------------------
    router = router.get("/v1/algorithms", move |_, _| {
        json(200, &algorithm_catalog())
    });

    // --- jobs -------------------------------------------------------------
    let s = Arc::clone(state);
    router = router.post("/v1/jobs", move |req, _| {
        let body: JobRequest = match parse_body(req) {
            Ok(body) => body,
            Err(resp) => return resp,
        };
        let Some(entry) = s.graphs.get(body.graph) else {
            return error(404, format!("no graph {}", body.graph));
        };
        // The store journals + fsyncs the submission before the job becomes
        // visible, so this 202 is durable.
        match s.jobs.submit(entry, body) {
            Ok(job) => {
                s.maybe_snapshot();
                json(202, &job.info())
            }
            Err(e) => submit_error(e),
        }
    });

    let s = Arc::clone(state);
    router = router.post("/v1/jobs/:id/retry", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        let Some(job) = s.jobs.get(id) else {
            return error(404, format!("no job {id}"));
        };
        if job.status() != JobStatus::Interrupted {
            return ApiError::conflict(format!(
                "job {id} is {:?}, not Interrupted; only interrupted jobs can be retried",
                job.status()
            ))
            .into_response();
        }
        let request = job.request.clone();
        let Some(entry) = s.graphs.get(request.graph) else {
            return ApiError::conflict(format!(
                "graph {} of interrupted job {id} no longer exists",
                request.graph
            ))
            .into_response();
        };
        match s.jobs.submit(entry, request) {
            Ok(fresh) => json(202, &fresh.info()),
            Err(e) => submit_error(e),
        }
    });

    let s = Arc::clone(state);
    router = router.get("/v1/jobs", move |_, _| {
        let infos: Vec<_> = s.jobs.list().iter().map(|j| j.info()).collect();
        json(200, &infos)
    });

    let s = Arc::clone(state);
    router = router.get("/v1/jobs/:id", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        match s.jobs.get(id) {
            Some(job) => json(200, &job.info()),
            None => error(404, format!("no job {id}")),
        }
    });

    let s = Arc::clone(state);
    router = router.delete("/v1/jobs/:id", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        match s.jobs.get(id) {
            Some(job) => {
                job.cancel();
                json(202, &job.info())
            }
            None => error(404, format!("no job {id}")),
        }
    });

    let s = Arc::clone(state);
    router = router.get("/v1/jobs/:id/events", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        match s.jobs.get(id) {
            Some(job) => Response::stream(200, "application/x-ndjson", ndjson_stream(job.events())),
            None => error(404, format!("no job {id}")),
        }
    });

    let s = Arc::clone(state);
    router = router.get("/v1/jobs/:id/mis", move |_, params| {
        let id = match graph_id(params) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        let Some(job) = s.jobs.get(id) else {
            return error(404, format!("no job {id}"));
        };
        let Some(mis) = job.mis() else {
            return error(
                409,
                format!("job {id} has no result yet (status {:?})", job.status()),
            );
        };
        // Stream the vertex ids as NDJSON, one chunk per id block.
        let mut blocks = mis
            .chunks(4096)
            .map(|block| {
                block
                    .iter()
                    .map(|v| format!("{v}\n"))
                    .collect::<String>()
                    .into_bytes()
            })
            .collect::<Vec<_>>()
            .into_iter();
        Response::stream(200, "application/x-ndjson", Box::new(move || blocks.next()))
    });

    // --- metrics & admin --------------------------------------------------
    let s = Arc::clone(state);
    router = router.get("/v1/metrics", move |_, _| {
        let report = MetricsReport {
            uptime_micros: s.started.elapsed().as_micros() as u64,
            endpoints: s.metrics().map(|m| m.report()).unwrap_or_default(),
            jobs: s.jobs.gauges(),
        };
        json(200, &report)
    });

    router = router.get("/v1/healthz", move |_, _| {
        Response::json(200, "{\"status\":\"ok\"}")
    });

    let s = Arc::clone(state);
    router = router.post("/v1/admin/shutdown", move |_, _| {
        s.shutdown_requested.store(true, Ordering::SeqCst);
        Response::json(202, "{\"status\":\"shutdown requested\"}")
    });

    router
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_whole_registry() {
        let catalog = algorithm_catalog();
        assert_eq!(catalog.len(), builtin_registry().len());
        let two_state = catalog.iter().find(|a| a.key == "two-state").unwrap();
        assert!(two_state.supports_topology_change);
        assert!(two_state.supports_trace);
        let greedy = catalog.iter().find(|a| a.key == "greedy").unwrap();
        assert!(!greedy.supports_trace);
    }
}
