//! Poison-tolerant lock acquisition.
//!
//! A poisoned `std` lock only means "a thread panicked while holding the
//! guard" — it says nothing about the data unless a critical section can be
//! interrupted mid-invariant. Every critical section in this crate either
//! performs a single atomic assignment (swapping an `Arc`, bumping a
//! version, overwriting a status struct) or maintains a map/queue whose
//! invariants hold between statements, so the guarded state is consistent
//! even when the flag is set. Recovering with [`PoisonError::into_inner`]
//! therefore degrades a handler panic to a 500 on that request instead of
//! cascading `expect` panics through every later request that touches the
//! same lock.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering from poisoning.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock`, recovering from poisoning.
pub(crate) fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock`, recovering from poisoning.
pub(crate) fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}
