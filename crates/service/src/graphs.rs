//! The named-graph registry: `Arc`-shared graphs with versioned live
//! mutation.
//!
//! Each entry holds the current topology behind an `RwLock<Arc<Graph>>`;
//! readers (job workers, listing handlers) take cheap `Arc` snapshots, and a
//! `PATCH` swaps in a freshly compacted graph under the write lock while
//! bumping the entry's version — running jobs keep their snapshot and
//! receive the same delta through their mailbox instead.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mis_graph::{CommittedDelta, Graph, GraphDelta, GraphError};

use crate::api::GraphInfo;
use crate::sync;

/// One registered graph.
pub struct GraphEntry {
    /// Registry id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Human-readable source label.
    pub source: String,
    /// `(current graph, version)`; version starts at 1 and bumps per patch.
    state: RwLock<(Arc<Graph>, u64)>,
}

impl GraphEntry {
    /// A cheap snapshot of the current topology and its version. Recovers
    /// from lock poisoning: the state is a single `(Arc, u64)` pair swapped
    /// atomically under the guard, so it is consistent even after a panic.
    pub fn snapshot(&self) -> (Arc<Graph>, u64) {
        let state = sync::read(&self.state);
        (Arc::clone(&state.0), state.1)
    }

    /// A free-standing entry registered nowhere — a placeholder for
    /// journal-recovered jobs whose graph was deleted before the crash, so
    /// their `JobInfo` still reports the original graph id.
    pub fn detached(id: u64, name: String, source: String, graph: Graph) -> Arc<GraphEntry> {
        Arc::new(GraphEntry {
            id,
            name,
            source,
            state: RwLock::new((Arc::new(graph), 1)),
        })
    }

    /// The entry as an API [`GraphInfo`].
    pub fn info(&self) -> GraphInfo {
        let (graph, version) = self.snapshot();
        GraphInfo {
            id: self.id,
            name: self.name.clone(),
            n: graph.n(),
            m: graph.m(),
            version,
            source: self.source.clone(),
        }
    }
}

/// The registry: insertion-ordered map from id to [`GraphEntry`].
#[derive(Default)]
pub struct GraphRegistry {
    entries: RwLock<BTreeMap<u64, Arc<GraphEntry>>>,
    next_id: AtomicU64,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GraphRegistry::default()
    }

    /// Registers a graph and returns its entry (id assigned here).
    pub fn insert(&self, name: String, source: String, graph: Graph) -> Arc<GraphEntry> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.insert_entry(id, name, source, graph, 1)
    }

    /// Re-registers a graph under a fixed id and version — the journal
    /// replay path. Advances the id counter past `id` so fresh inserts never
    /// collide with recovered entries.
    pub fn restore(
        &self,
        id: u64,
        name: String,
        source: String,
        graph: Graph,
        version: u64,
    ) -> Arc<GraphEntry> {
        self.next_id.fetch_max(id, Ordering::Relaxed);
        self.insert_entry(id, name, source, graph, version)
    }

    fn insert_entry(
        &self,
        id: u64,
        name: String,
        source: String,
        graph: Graph,
        version: u64,
    ) -> Arc<GraphEntry> {
        let entry = Arc::new(GraphEntry {
            id,
            name,
            source,
            state: RwLock::new((Arc::new(graph), version)),
        });
        sync::write(&self.entries).insert(id, Arc::clone(&entry));
        entry
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: u64) -> Option<Arc<GraphEntry>> {
        sync::read(&self.entries).get(&id).cloned()
    }

    /// Removes an entry by id; running jobs keep their `Arc` snapshots.
    pub fn remove(&self, id: u64) -> Option<Arc<GraphEntry>> {
        sync::write(&self.entries).remove(&id)
    }

    /// All entries, in id order.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        sync::read(&self.entries).values().cloned().collect()
    }

    /// Applies `delta` to the stored graph of `id`, swapping in the mutated
    /// topology and bumping the version. Returns the normalized commit and
    /// the new version.
    ///
    /// # Errors
    ///
    /// `Ok(Err(_))` carries a [`GraphError`] for invalid deltas (the stored
    /// graph is unchanged); the outer `None` means the id is unknown.
    pub fn apply_delta(
        &self,
        id: u64,
        delta: &GraphDelta,
    ) -> Option<Result<(CommittedDelta, u64), GraphError>> {
        let entry = self.get(id)?;
        let mut state = sync::write(&entry.state);
        match state.0.apply_delta(delta) {
            Ok((graph, committed)) => {
                state.0 = Arc::new(graph);
                state.1 += 1;
                Some(Ok((committed, state.1)))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn insert_get_list_remove() {
        let reg = GraphRegistry::new();
        let a = reg.insert("a".into(), "upload".into(), path3());
        let b = reg.insert("b".into(), "upload".into(), path3());
        assert_eq!((a.id, b.id), (1, 2));
        assert_eq!(reg.get(1).unwrap().name, "a");
        assert_eq!(reg.list().len(), 2);
        let info = a.info();
        assert_eq!((info.n, info.m, info.version), (3, 2, 1));
        assert!(reg.remove(1).is_some());
        assert!(reg.get(1).is_none());
        assert!(reg.remove(1).is_none());
    }

    #[test]
    fn restore_preserves_ids_and_versions() {
        let reg = GraphRegistry::new();
        reg.restore(7, "r".into(), "journal".into(), path3(), 4);
        let info = reg.get(7).unwrap().info();
        assert_eq!((info.id, info.version), (7, 4));
        // Fresh inserts continue past restored ids.
        let fresh = reg.insert("f".into(), "upload".into(), path3());
        assert_eq!(fresh.id, 8);
    }

    #[test]
    fn apply_delta_swaps_and_bumps_version() {
        let reg = GraphRegistry::new();
        let entry = reg.insert("a".into(), "upload".into(), path3());
        let (snap_before, v1) = entry.snapshot();
        let mut delta = GraphDelta::new();
        delta.add_edge(0, 2);
        let (committed, v2) = reg.apply_delta(entry.id, &delta).unwrap().unwrap();
        assert_eq!(committed.inserted, vec![(0, 2)]);
        assert_eq!((v1, v2), (1, 2));
        // Old snapshots are untouched; new snapshots see the mutation.
        assert!(!snap_before.has_edge(0, 2));
        let (snap_after, _) = entry.snapshot();
        assert!(snap_after.has_edge(0, 2));
    }

    #[test]
    fn invalid_delta_leaves_graph_unchanged() {
        let reg = GraphRegistry::new();
        let entry = reg.insert("a".into(), "upload".into(), path3());
        let mut delta = GraphDelta::new();
        delta.add_edge(0, 99);
        assert!(reg.apply_delta(entry.id, &delta).unwrap().is_err());
        let (snap, version) = entry.snapshot();
        assert_eq!((snap.n(), version), (3, 1));
        assert!(reg.apply_delta(999, &delta).is_none());
    }
}
