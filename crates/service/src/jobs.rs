//! Asynchronous job store: a bounded worker pool executing registry
//! algorithms over `Arc`-shared graph snapshots, with per-job cancellation,
//! live mutation mailboxes, and NDJSON event streams.
//!
//! Lifecycle: `Queued → Running → {Completed, Cancelled, Failed}`. A worker
//! snapshots the target graph, instantiates the requested algorithm, and
//! drives rounds; between rounds it drains the job's mutation mailbox (fed
//! by `PATCH /v1/graphs/:id/edges`) through `Algorithm::apply_mutation`, so
//! topology changes re-stabilize incrementally instead of restarting the
//! run. Shutdown ([`JobStore::drain`]) stops intake, cancels everything
//! still queued, lets running jobs finish, and joins the pool.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use mis_core::{AlgorithmConfig, StepCtx};
use mis_graph::{mis_check, GraphDelta};
use mis_sim::builtin_registry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::api::{JobGauges, JobInfo, JobOutcome, JobRequest, JobStatus};
use crate::graphs::GraphEntry;

/// Salt decorrelating the counter-RNG key from the trial seed; a frozen copy
/// of the (private) constant in `mis_sim::runner`, kept bit-identical so a
/// service job and a `run_trial` with the same seed share coin streams.
const COUNTER_SEED_SALT: u64 = 0x0005_EEDC_0DE0_FC01;

/// Cap on buffered event lines per job; one `truncated` marker is appended
/// when a job would exceed it.
const MAX_EVENT_LINES: usize = 100_000;

/// Poll interval of idle event streams and lingering stabilized jobs.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

// ---------------------------------------------------------------------------
// Event buffer + NDJSON streaming
// ---------------------------------------------------------------------------

/// Append-only buffer of NDJSON event lines, closed exactly once when the
/// job reaches a terminal state. Streams replay the prefix they have not
/// sent yet and end when the buffer is closed and drained.
pub struct EventBuffer {
    lines: Mutex<Vec<String>>,
    closed: AtomicBool,
}

impl EventBuffer {
    fn new() -> Arc<EventBuffer> {
        Arc::new(EventBuffer {
            lines: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        })
    }

    /// Appends one event line (newline added here).
    fn push(&self, line: String) {
        let mut lines = self.lines.lock().expect("event buffer lock poisoned");
        match lines.len().cmp(&MAX_EVENT_LINES) {
            std::cmp::Ordering::Less => lines.push(line + "\n"),
            std::cmp::Ordering::Equal => lines.push("{\"event\":\"truncated\"}\n".to_string()),
            std::cmp::Ordering::Greater => {}
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Number of buffered lines so far (for tests and gauges).
    pub fn len(&self) -> usize {
        self.lines.lock().expect("event buffer lock poisoned").len()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A chunked-transfer source streaming the buffer live: each chunk is the
/// batch of lines appended since the previous chunk; the stream ends once
/// the buffer is closed and fully replayed.
pub fn ndjson_stream(buffer: Arc<EventBuffer>) -> warp::ChunkFn {
    let mut cursor = 0usize;
    Box::new(move || loop {
        {
            let lines = buffer.lines.lock().expect("event buffer lock poisoned");
            if cursor < lines.len() {
                let batch = lines[cursor..].concat();
                cursor = lines.len();
                return Some(batch.into_bytes());
            }
            if buffer.closed.load(Ordering::SeqCst) {
                return None;
            }
        }
        thread::sleep(POLL_INTERVAL);
    })
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

struct JobState {
    status: JobStatus,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    mis: Option<Vec<usize>>,
}

/// One submitted job.
pub struct Job {
    /// Job id.
    pub id: u64,
    /// The graph registry entry the job runs on.
    pub entry: Arc<GraphEntry>,
    /// The submitted request.
    pub request: JobRequest,
    state: Mutex<JobState>,
    cancel: AtomicBool,
    mailbox: Mutex<VecDeque<GraphDelta>>,
    events: Arc<EventBuffer>,
    /// Graph version the worker snapshotted (0 until the job starts); the
    /// `PATCH` handler only forwards deltas to jobs whose snapshot predates
    /// the patched version, so a delta is never applied twice.
    snapshot_version: AtomicU64,
    /// Whether the instantiated algorithm can follow topology changes
    /// (unknown until the worker instantiates it).
    topology_capable: Mutex<Option<bool>>,
    /// The store's draining flag: a stabilized job stops lingering the
    /// moment shutdown starts, so resident jobs can never wedge the drain.
    drain_flag: Arc<AtomicBool>,
}

impl Job {
    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state.lock().expect("job lock poisoned").status
    }

    /// The job as an API [`JobInfo`].
    pub fn info(&self) -> JobInfo {
        let state = self.state.lock().expect("job lock poisoned");
        JobInfo {
            id: self.id,
            graph: self.entry.id,
            algorithm: self.request.algorithm.clone(),
            status: state.status,
            outcome: state.outcome.clone(),
            error: state.error.clone(),
        }
    }

    /// The final MIS (vertex ids), present once the job completed.
    pub fn mis(&self) -> Option<Vec<usize>> {
        self.state.lock().expect("job lock poisoned").mis.clone()
    }

    /// The job's event buffer, for streaming.
    pub fn events(&self) -> Arc<EventBuffer> {
        Arc::clone(&self.events)
    }

    /// Requests cancellation. Queued jobs become `Cancelled` immediately;
    /// running jobs observe the flag at the next round boundary. Returns
    /// `false` if the job was already terminal.
    pub fn cancel(&self) -> bool {
        let mut state = self.state.lock().expect("job lock poisoned");
        match state.status {
            JobStatus::Queued => {
                state.status = JobStatus::Cancelled;
                self.cancel.store(true, Ordering::SeqCst);
                self.events.push("{\"event\":\"cancelled\"}".to_string());
                self.events.close();
                true
            }
            JobStatus::Running => {
                self.cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Enqueues a live topology delta if this job can still consume it:
    /// not terminal, algorithm not known to lack topology support, and the
    /// job's graph snapshot (if taken) predates `patched_version`. Returns
    /// `Some(true)` if enqueued, `Some(false)` if the algorithm cannot
    /// follow topology changes, `None` if the job no longer needs it.
    pub fn push_delta(&self, delta: &GraphDelta, patched_version: u64) -> Option<bool> {
        if self.status().is_terminal() {
            return None;
        }
        if *self.topology_capable.lock().expect("job lock poisoned") == Some(false) {
            return Some(false);
        }
        let snapshot = self.snapshot_version.load(Ordering::SeqCst);
        if snapshot == 0 || snapshot >= patched_version {
            // Not started yet (will snapshot the patched graph) or already
            // snapshotted it: the delta is baked into the job's graph.
            return None;
        }
        self.mailbox
            .lock()
            .expect("job lock poisoned")
            .push_back(delta.clone());
        Some(true)
    }

    fn take_mail(&self) -> Vec<GraphDelta> {
        self.mailbox
            .lock()
            .expect("job lock poisoned")
            .drain(..)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// The job store: id-ordered map of jobs plus a FIFO queue drained by a
/// persistent worker pool.
pub struct JobStore {
    jobs: RwLock<BTreeMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    next_id: AtomicU64,
    draining: Arc<AtomicBool>,
    submitted: AtomicU64,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl JobStore {
    /// Starts a store with `workers` worker threads (0 = available
    /// parallelism).
    pub fn start(workers: usize) -> Arc<JobStore> {
        let workers = if workers == 0 {
            thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            workers
        };
        let store = Arc::new(JobStore {
            jobs: RwLock::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            next_id: AtomicU64::new(0),
            draining: Arc::new(AtomicBool::new(false)),
            submitted: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let store = Arc::clone(&store);
            handles.push(thread::spawn(move || store.worker_loop()));
        }
        *store.workers.lock().expect("worker list lock poisoned") = handles;
        store
    }

    /// Accepts a job for `entry`, or refuses while draining.
    ///
    /// # Errors
    ///
    /// A static message when the store is shutting down or the algorithm is
    /// unknown.
    pub fn submit(
        self: &Arc<Self>,
        entry: Arc<GraphEntry>,
        request: JobRequest,
    ) -> Result<Arc<Job>, &'static str> {
        if self.draining.load(Ordering::SeqCst) {
            return Err("service is draining; not accepting jobs");
        }
        if !builtin_registry().contains(&request.algorithm) {
            return Err("unknown algorithm key");
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Arc::new(Job {
            id,
            entry,
            request,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                outcome: None,
                error: None,
                mis: None,
            }),
            cancel: AtomicBool::new(false),
            mailbox: Mutex::new(VecDeque::new()),
            events: EventBuffer::new(),
            snapshot_version: AtomicU64::new(0),
            topology_capable: Mutex::new(None),
            drain_flag: Arc::clone(&self.draining),
        });
        self.jobs
            .write()
            .expect("job map lock poisoned")
            .insert(id, Arc::clone(&job));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue
            .lock()
            .expect("job queue lock poisoned")
            .push_back(Arc::clone(&job));
        self.available.notify_one();
        Ok(job)
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .read()
            .expect("job map lock poisoned")
            .get(&id)
            .cloned()
    }

    /// All jobs, in id order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.jobs
            .read()
            .expect("job map lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// All non-terminal jobs targeting graph `graph_id`.
    pub fn jobs_on_graph(&self, graph_id: u64) -> Vec<Arc<Job>> {
        self.list()
            .into_iter()
            .filter(|j| j.entry.id == graph_id && !j.status().is_terminal())
            .collect()
    }

    /// Aggregate job gauges for `GET /v1/metrics`.
    pub fn gauges(&self) -> JobGauges {
        let mut gauges = JobGauges {
            submitted: self.submitted.load(Ordering::Relaxed),
            ..JobGauges::default()
        };
        for job in self.list() {
            match job.status() {
                JobStatus::Queued => gauges.queued += 1,
                JobStatus::Running => gauges.running += 1,
                JobStatus::Completed => gauges.completed += 1,
                JobStatus::Cancelled => gauges.cancelled += 1,
                JobStatus::Failed => gauges.failed += 1,
            }
        }
        gauges
    }

    /// `true` once [`drain`](Self::drain) was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Stops intake, cancels everything still queued, lets running jobs
    /// finish, and joins the worker pool. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Cancel the backlog so no worker picks up new work.
        loop {
            let job = self
                .queue
                .lock()
                .expect("job queue lock poisoned")
                .pop_front();
            match job {
                Some(job) => {
                    job.cancel();
                }
                None => break,
            }
        }
        self.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker list lock poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("job queue lock poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (q, _) = self
                        .available
                        .wait_timeout(queue, Duration::from_millis(200))
                        .expect("job queue lock poisoned");
                    queue = q;
                }
            };
            let Some(job) = job else { return };
            if self.draining.load(Ordering::SeqCst) {
                job.cancel();
                continue;
            }
            execute(&job);
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Transitions the job to `Running` (unless already cancelled) and runs it,
/// converting panics into `Failed`.
fn execute(job: &Arc<Job>) {
    {
        let mut state = job.state.lock().expect("job lock poisoned");
        if state.status != JobStatus::Queued {
            return; // cancelled while queued
        }
        state.status = JobStatus::Running;
    }
    let result = catch_unwind(AssertUnwindSafe(|| run_job(job)));
    let mut state = job.state.lock().expect("job lock poisoned");
    match result {
        Ok(Ok(RunEnd::Completed { outcome, mis })) => {
            job.events.push(format!(
                "{{\"event\":\"done\",\"status\":\"completed\",\"rounds\":{},\"stabilized\":{},\"valid_mis\":{}}}",
                outcome.rounds, outcome.stabilized, outcome.valid_mis
            ));
            state.status = JobStatus::Completed;
            state.outcome = Some(outcome);
            state.mis = Some(mis);
        }
        Ok(Ok(RunEnd::Cancelled)) => {
            job.events
                .push("{\"event\":\"done\",\"status\":\"cancelled\"}".to_string());
            state.status = JobStatus::Cancelled;
        }
        Ok(Err(message)) => {
            job.events.push(format!(
                "{{\"event\":\"done\",\"status\":\"failed\",\"error\":{}}}",
                json_string(&message)
            ));
            state.status = JobStatus::Failed;
            state.error = Some(message);
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            job.events.push(format!(
                "{{\"event\":\"done\",\"status\":\"failed\",\"error\":{}}}",
                json_string(&message)
            ));
            state.status = JobStatus::Failed;
            state.error = Some(message);
        }
    }
    job.events.close();
}

enum RunEnd {
    Completed {
        outcome: JobOutcome,
        mis: Vec<usize>,
    },
    Cancelled,
}

/// Minimal JSON string escaping for event lines.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn run_job(job: &Arc<Job>) -> Result<RunEnd, String> {
    let request = &job.request;
    let factory = builtin_registry()
        .get(&request.algorithm)
        .ok_or_else(|| format!("unknown algorithm '{}'", request.algorithm))?;

    let (graph, version) = job.entry.snapshot();
    job.snapshot_version.store(version, Ordering::SeqCst);

    let mut rng = ChaCha8Rng::seed_from_u64(request.seed);
    let config = AlgorithmConfig {
        init: request.init,
        execution: request.execution,
        strategy: request.strategy,
        counter_seed: request.seed ^ COUNTER_SEED_SALT,
    };
    let start = Instant::now();
    let mut algorithm = factory.init(&graph, &config, &mut rng);
    *job.topology_capable.lock().expect("job lock poisoned") =
        Some(algorithm.supports_topology_change());

    if !request.scheduler.is_synchronous() && !algorithm.supports_partial_activation() {
        return Err(format!(
            "algorithm '{}' does not support the {} scheduler",
            request.algorithm,
            request.scheduler.label()
        ));
    }
    let mut scheduler = request.scheduler.build();
    let trace = request.record_trace && algorithm.supports_trace();
    let linger = Duration::from_micros(job.request.linger_micros);
    let mut mutations_applied = 0usize;
    let mut stable_since: Option<Instant> = None;

    loop {
        if job.cancel.load(Ordering::SeqCst) {
            return Ok(RunEnd::Cancelled);
        }
        let mut mutated = false;
        for delta in job.take_mail() {
            match algorithm.apply_mutation(&delta) {
                Ok(committed) => {
                    mutations_applied += 1;
                    mutated = true;
                    job.events.push(format!(
                        "{{\"event\":\"topology\",\"round\":{},\"inserted\":{},\"removed\":{},\"new_n\":{}}}",
                        algorithm.round(),
                        committed.inserted.len(),
                        committed.removed.len(),
                        committed.new_n
                    ));
                }
                Err(e) => {
                    job.events.push(format!(
                        "{{\"event\":\"mutation_rejected\",\"round\":{},\"error\":{}}}",
                        algorithm.round(),
                        json_string(&e.to_string())
                    ));
                }
            }
        }
        if mutated {
            stable_since = None;
        }
        if algorithm.is_stabilized() {
            let since = *stable_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= linger || job.drain_flag.load(Ordering::SeqCst) {
                break;
            }
            thread::sleep(POLL_INTERVAL.min(linger));
            continue;
        }
        stable_since = None;
        if algorithm.round() >= request.max_rounds {
            break;
        }
        let activation = scheduler.next_activation(algorithm.n(), algorithm.round(), &mut rng);
        algorithm.step(StepCtx {
            rng: &mut rng,
            activation: &activation,
        });
        if trace {
            let counts = algorithm.counts();
            job.events.push(format!(
                "{{\"event\":\"round\",\"round\":{},\"black\":{},\"active\":{},\"unstable\":{}}}",
                algorithm.round(),
                counts.black,
                counts.active,
                counts.unstable
            ));
        }
        if request.round_delay_micros > 0 {
            thread::sleep(Duration::from_micros(request.round_delay_micros));
        }
    }

    let black = algorithm.black_set();
    let final_graph = algorithm.current_graph().unwrap_or(&graph);
    let outcome = JobOutcome {
        rounds: algorithm.round(),
        stabilized: algorithm.is_stabilized(),
        valid_mis: mis_check::is_mis(final_graph, &black),
        mis_size: black.len(),
        n: final_graph.n(),
        m: final_graph.m(),
        random_bits: algorithm.random_bits_used(),
        states_per_vertex: algorithm.states_per_vertex(),
        mutations_applied,
        wall_micros: start.elapsed().as_micros() as u64,
    };
    let mis = black.iter().collect();
    Ok(RunEnd::Completed { outcome, mis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::GraphRegistry;
    use mis_graph::Graph;

    fn wait_terminal(job: &Arc<Job>) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(20);
        while !job.status().is_terminal() {
            assert!(Instant::now() < deadline, "job {} hung", job.id);
            thread::sleep(Duration::from_millis(2));
        }
        job.status()
    }

    fn registry_with_path(n: usize) -> (GraphRegistry, Arc<GraphEntry>) {
        let registry = GraphRegistry::new();
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let entry = registry.insert(
            "path".into(),
            "upload".into(),
            Graph::from_edges(n, edges).unwrap(),
        );
        (registry, entry)
    }

    #[test]
    fn jobs_complete_with_valid_mis() {
        let (_registry, entry) = registry_with_path(50);
        let store = JobStore::start(2);
        let job = store
            .submit(Arc::clone(&entry), JobRequest::new(entry.id, "two-state"))
            .unwrap();
        assert_eq!(wait_terminal(&job), JobStatus::Completed);
        let info = job.info();
        let outcome = info.outcome.unwrap();
        assert!(outcome.stabilized && outcome.valid_mis);
        assert_eq!(outcome.mutations_applied, 0);
        assert_eq!(job.mis().unwrap().len(), outcome.mis_size);
        store.drain();
    }

    #[test]
    fn unknown_algorithm_is_rejected_at_submit() {
        let (_registry, entry) = registry_with_path(4);
        let store = JobStore::start(1);
        assert!(store
            .submit(Arc::clone(&entry), JobRequest::new(entry.id, "nope"))
            .is_err());
        store.drain();
    }

    #[test]
    fn unsupported_scheduler_fails_the_job() {
        let (_registry, entry) = registry_with_path(6);
        let store = JobStore::start(1);
        let mut request = JobRequest::new(entry.id, "luby");
        request.scheduler = mis_sim::spec::SchedulerSpec::RandomSubset { p: 0.5 };
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        assert_eq!(wait_terminal(&job), JobStatus::Failed);
        assert!(job.info().error.unwrap().contains("scheduler"));
        store.drain();
    }

    #[test]
    fn cancelling_a_lingering_job_stops_it() {
        let (_registry, entry) = registry_with_path(20);
        let store = JobStore::start(1);
        let mut request = JobRequest::new(entry.id, "two-state");
        request.linger_micros = 60_000_000; // would linger for a minute
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        // Wait until it is resident (stabilized but lingering).
        thread::sleep(Duration::from_millis(50));
        assert_eq!(job.status(), JobStatus::Running);
        assert!(job.cancel());
        assert_eq!(wait_terminal(&job), JobStatus::Cancelled);
        assert!(!job.cancel(), "cancel is idempotent on terminal jobs");
        store.drain();
    }

    #[test]
    fn live_delta_reaches_a_lingering_job_and_restabilizes() {
        let (registry, entry) = registry_with_path(30);
        let store = JobStore::start(1);
        let mut request = JobRequest::new(entry.id, "two-state");
        request.linger_micros = 30_000_000;
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(job.status(), JobStatus::Running);

        // Patch the registry graph, then forward the delta like the handler.
        let mut delta = GraphDelta::new();
        delta.add_vertex([0, 2, 4]);
        delta.remove_edge(0, 1);
        let (_committed, version) = registry.apply_delta(entry.id, &delta).unwrap().unwrap();
        assert_eq!(job.push_delta(&delta, version), Some(true));

        // Give it time to apply + re-stabilize, then cancel the linger.
        thread::sleep(Duration::from_millis(100));
        job.cancel();
        assert_eq!(wait_terminal(&job), JobStatus::Cancelled);
        store.drain();
    }

    #[test]
    fn drain_cancels_queued_jobs_and_joins() {
        let (_registry, entry) = registry_with_path(10);
        let store = JobStore::start(1);
        // A lingering job occupies the single worker, so the rest stay
        // queued until drain.
        let mut slow = JobRequest::new(entry.id, "two-state");
        slow.linger_micros = 60_000_000;
        let running = store.submit(Arc::clone(&entry), slow).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(running.status(), JobStatus::Running);
        let queued: Vec<_> = (0..4)
            .map(|_| {
                store
                    .submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy"))
                    .unwrap()
            })
            .collect();
        store.drain();
        assert!(store.is_draining());
        // Drain breaks the linger: the resident job completes rather than
        // wedging shutdown for the rest of its linger window.
        assert_eq!(running.status(), JobStatus::Completed);
        for job in queued {
            assert_eq!(job.status(), JobStatus::Cancelled);
        }
        assert!(store
            .submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy"))
            .is_err());
        let gauges = store.gauges();
        assert_eq!(gauges.submitted, 5);
        assert_eq!(gauges.queued + gauges.running, 0);
    }

    #[test]
    fn event_stream_replays_and_terminates() {
        let (_registry, entry) = registry_with_path(12);
        let store = JobStore::start(1);
        let mut request = JobRequest::new(entry.id, "three-state");
        request.record_trace = true;
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        assert_eq!(wait_terminal(&job), JobStatus::Completed);
        let mut stream = ndjson_stream(job.events());
        let mut text = String::new();
        while let Some(chunk) = stream() {
            text.push_str(std::str::from_utf8(&chunk).unwrap());
        }
        assert!(text.contains("\"event\":\"round\""));
        assert!(text
            .lines()
            .last()
            .unwrap()
            .contains("\"status\":\"completed\""));
        store.drain();
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
