//! Asynchronous job store: a bounded worker pool executing registry
//! algorithms over `Arc`-shared graph snapshots, with per-job cancellation,
//! live mutation mailboxes, NDJSON event streams, and write-ahead
//! journaling of every lifecycle transition.
//!
//! Lifecycle: `Queued → Running → {Completed, Cancelled, Failed}` (plus
//! `Interrupted`, assigned only by journal replay to jobs that were running
//! at a crash). A worker snapshots the target graph, instantiates the
//! requested algorithm, and drives rounds; between rounds it drains the
//! job's mutation mailbox (fed by `PATCH /v1/graphs/:id/edges`) through
//! `Algorithm::apply_mutation`, so topology changes re-stabilize
//! incrementally instead of restarting the run. Admission is bounded: the
//! FIFO queue has a fixed capacity and [`JobStore::submit`] sheds load with
//! a typed error once it fills. Shutdown ([`JobStore::drain`]) stops
//! intake, cancels everything still queued, lets running jobs finish, and
//! joins the pool; [`JobStore::abandon`] is the crash-simulation variant
//! that walks away without joining.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use mis_core::{AlgorithmConfig, StepCtx};
use mis_graph::{mis_check, GraphDelta};
use mis_sim::builtin_registry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::api::{JobGauges, JobInfo, JobOutcome, JobRequest, JobStatus};
use crate::graphs::GraphEntry;
use crate::journal::{Journal, Record, RecoveredJob};
use crate::sync;

/// Salt decorrelating the counter-RNG key from the trial seed; a frozen copy
/// of the (private) constant in `mis_sim::runner`, kept bit-identical so a
/// service job and a `run_trial` with the same seed share coin streams.
const COUNTER_SEED_SALT: u64 = 0x0005_EEDC_0DE0_FC01;

/// Cap on buffered event lines per job; one `truncated` marker is appended
/// when a job would exceed it.
const MAX_EVENT_LINES: usize = 100_000;

/// Poll interval of idle event streams and lingering stabilized jobs.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Default bound on the submission queue (jobs waiting for a worker).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Event buffer + NDJSON streaming
// ---------------------------------------------------------------------------

/// Append-only buffer of NDJSON event lines, closed exactly once when the
/// job reaches a terminal state. Streams replay the prefix they have not
/// sent yet and end when the buffer is closed and drained.
pub struct EventBuffer {
    lines: Mutex<Vec<String>>,
    closed: AtomicBool,
}

impl EventBuffer {
    fn new() -> Arc<EventBuffer> {
        Arc::new(EventBuffer {
            lines: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        })
    }

    /// Appends one event line (newline added here).
    fn push(&self, line: String) {
        let mut lines = sync::lock(&self.lines);
        match lines.len().cmp(&MAX_EVENT_LINES) {
            std::cmp::Ordering::Less => lines.push(line + "\n"),
            std::cmp::Ordering::Equal => lines.push("{\"event\":\"truncated\"}\n".to_string()),
            std::cmp::Ordering::Greater => {}
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Number of buffered lines so far (for tests and gauges).
    pub fn len(&self) -> usize {
        sync::lock(&self.lines).len()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A chunked-transfer source streaming the buffer live: each chunk is the
/// batch of lines appended since the previous chunk; the stream ends once
/// the buffer is closed and fully replayed.
pub fn ndjson_stream(buffer: Arc<EventBuffer>) -> warp::ChunkFn {
    let mut cursor = 0usize;
    Box::new(move || loop {
        {
            let lines = sync::lock(&buffer.lines);
            if cursor < lines.len() {
                let batch = lines[cursor..].concat();
                cursor = lines.len();
                return Some(batch.into_bytes());
            }
            if buffer.closed.load(Ordering::SeqCst) {
                return None;
            }
        }
        thread::sleep(POLL_INTERVAL);
    })
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

struct JobState {
    status: JobStatus,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    mis: Option<Vec<usize>>,
}

/// One submitted job.
pub struct Job {
    /// Job id.
    pub id: u64,
    /// The graph registry entry the job runs on.
    pub entry: Arc<GraphEntry>,
    /// The submitted request.
    pub request: JobRequest,
    state: Mutex<JobState>,
    cancel: AtomicBool,
    mailbox: Mutex<VecDeque<GraphDelta>>,
    events: Arc<EventBuffer>,
    /// Graph version the worker snapshotted (0 until the job starts); the
    /// `PATCH` handler only forwards deltas to jobs whose snapshot predates
    /// the patched version, so a delta is never applied twice.
    snapshot_version: AtomicU64,
    /// Whether the instantiated algorithm can follow topology changes
    /// (unknown until the worker instantiates it).
    topology_capable: Mutex<Option<bool>>,
    /// The store's draining flag: a stabilized job stops lingering the
    /// moment shutdown starts, so resident jobs can never wedge the drain.
    drain_flag: Arc<AtomicBool>,
    /// Shared journal, when the store persists. Worker-side appends are
    /// best-effort: a sealed journal (crash in progress) drops them, and
    /// replay marks the job `Interrupted` instead.
    journal: Option<Arc<Journal>>,
}

impl Job {
    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        sync::lock(&self.state).status
    }

    /// The job as an API [`JobInfo`].
    pub fn info(&self) -> JobInfo {
        let state = sync::lock(&self.state);
        JobInfo {
            id: self.id,
            graph: self.entry.id,
            algorithm: self.request.algorithm.clone(),
            status: state.status,
            outcome: state.outcome.clone(),
            error: state.error.clone(),
        }
    }

    /// The final MIS (vertex ids), present once the job completed.
    pub fn mis(&self) -> Option<Vec<usize>> {
        sync::lock(&self.state).mis.clone()
    }

    /// The job's event buffer, for streaming.
    pub fn events(&self) -> Arc<EventBuffer> {
        Arc::clone(&self.events)
    }

    fn journal_append(&self, record: &Record) {
        if let Some(journal) = &self.journal {
            let _ = journal.append(record);
        }
    }

    fn finish_record(&self, state: &JobState) -> Record {
        Record::JobFinished {
            id: self.id,
            status: state.status,
            outcome: state.outcome.clone(),
            error: state.error.clone(),
            mis: state.mis.clone(),
        }
    }

    /// Requests cancellation. Queued jobs become `Cancelled` immediately;
    /// running jobs observe the flag at the next round boundary. Returns
    /// `false` if the job was already terminal.
    pub fn cancel(&self) -> bool {
        let mut state = sync::lock(&self.state);
        match state.status {
            JobStatus::Queued => {
                state.status = JobStatus::Cancelled;
                self.cancel.store(true, Ordering::SeqCst);
                self.events.push("{\"event\":\"cancelled\"}".to_string());
                self.events.close();
                let record = self.finish_record(&state);
                drop(state);
                self.journal_append(&record);
                true
            }
            JobStatus::Running => {
                self.cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Enqueues a live topology delta if this job can still consume it:
    /// not terminal, algorithm not known to lack topology support, and the
    /// job's graph snapshot (if taken) predates `patched_version`. Returns
    /// `Some(true)` if enqueued, `Some(false)` if the algorithm cannot
    /// follow topology changes, `None` if the job no longer needs it.
    pub fn push_delta(&self, delta: &GraphDelta, patched_version: u64) -> Option<bool> {
        if self.status().is_terminal() {
            return None;
        }
        if *sync::lock(&self.topology_capable) == Some(false) {
            return Some(false);
        }
        let snapshot = self.snapshot_version.load(Ordering::SeqCst);
        if snapshot == 0 || snapshot >= patched_version {
            // Not started yet (will snapshot the patched graph) or already
            // snapshotted it: the delta is baked into the job's graph.
            return None;
        }
        sync::lock(&self.mailbox).push_back(delta.clone());
        Some(true)
    }

    fn take_mail(&self) -> Vec<GraphDelta> {
        sync::lock(&self.mailbox).drain(..).collect()
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Why [`JobStore::submit`] refused a job. Each variant maps to a distinct
/// HTTP degradation mode in the routes layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// Shutdown started; the service answers 503 with `Retry-After`.
    Draining,
    /// The bounded queue is full; the service sheds load with 429.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The algorithm key is not in the registry (a 400).
    UnknownAlgorithm(String),
    /// The journal refused the submission record — the job was NOT
    /// accepted and must not be acknowledged (a 503).
    Persistence(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "service is draining; not accepting jobs"),
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue is full (capacity {capacity}); retry later")
            }
            SubmitError::UnknownAlgorithm(key) => write!(f, "unknown algorithm key '{key}'"),
            SubmitError::Persistence(e) => write!(f, "could not journal the job: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The job store: id-ordered map of jobs plus a bounded FIFO queue drained
/// by a persistent worker pool.
pub struct JobStore {
    jobs: RwLock<BTreeMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    capacity: usize,
    available: Condvar,
    next_id: AtomicU64,
    draining: Arc<AtomicBool>,
    submitted: AtomicU64,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    journal: Option<Arc<Journal>>,
    /// Submission is the one path that journals BEFORE the effect is
    /// visible (a job must be durable before anyone can observe it).
    /// Each submit holds a read guard across append-to-insert; a snapshot
    /// capture takes the write side as a barrier so it can never observe
    /// a journal seq whose job has not reached the map yet — trimming the
    /// journal at that seq would silently drop an acknowledged job.
    submit_gate: RwLock<()>,
}

impl JobStore {
    /// Starts a store with `workers` worker threads (0 = available
    /// parallelism), a queue bounded at `capacity` (0 =
    /// [`DEFAULT_QUEUE_CAPACITY`]), and an optional journal that every
    /// lifecycle transition is appended to.
    pub fn start(workers: usize, capacity: usize, journal: Option<Arc<Journal>>) -> Arc<JobStore> {
        let workers = if workers == 0 {
            thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            workers
        };
        let capacity = if capacity == 0 {
            DEFAULT_QUEUE_CAPACITY
        } else {
            capacity
        };
        let store = Arc::new(JobStore {
            jobs: RwLock::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            capacity,
            available: Condvar::new(),
            next_id: AtomicU64::new(0),
            draining: Arc::new(AtomicBool::new(false)),
            submitted: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            journal,
            submit_gate: RwLock::new(()),
        });
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let store = Arc::clone(&store);
            handles.push(thread::spawn(move || store.worker_loop()));
        }
        *sync::lock(&store.workers) = handles;
        store
    }

    /// The configured queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn new_job(&self, id: u64, entry: Arc<GraphEntry>, request: JobRequest) -> Arc<Job> {
        Arc::new(Job {
            id,
            entry,
            request,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                outcome: None,
                error: None,
                mis: None,
            }),
            cancel: AtomicBool::new(false),
            mailbox: Mutex::new(VecDeque::new()),
            events: EventBuffer::new(),
            snapshot_version: AtomicU64::new(0),
            topology_capable: Mutex::new(None),
            drain_flag: Arc::clone(&self.draining),
            journal: self.journal.clone(),
        })
    }

    /// Accepts a job for `entry`, or refuses with a typed [`SubmitError`].
    /// The submission record is journaled (and fsynced) *before* the job
    /// becomes visible, so an acknowledged 202 can never be lost: a crash
    /// after this returns re-queues the job on replay.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] — draining, queue full (load shed), unknown
    /// algorithm, or persistence failure. The queue bound is checked before
    /// the id is assigned; under concurrent submits it is a soft bound
    /// (momentary overshoot by the number of racing requests).
    pub fn submit(
        self: &Arc<Self>,
        entry: Arc<GraphEntry>,
        request: JobRequest,
    ) -> Result<Arc<Job>, SubmitError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        if !builtin_registry().contains(&request.algorithm) {
            return Err(SubmitError::UnknownAlgorithm(request.algorithm.clone()));
        }
        if sync::lock(&self.queue).len() >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        // Hold the gate from the durable append until the job is visible
        // in the map; see `submit_gate`.
        let _in_flight = sync::read(&self.submit_gate);
        if let Some(journal) = &self.journal {
            journal
                .append(&Record::JobSubmitted {
                    id,
                    request: request.clone(),
                })
                .map_err(|e| SubmitError::Persistence(e.to_string()))?;
        }
        let job = self.new_job(id, entry, request);
        sync::write(&self.jobs).insert(id, Arc::clone(&job));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        sync::lock(&self.queue).push_back(Arc::clone(&job));
        self.available.notify_one();
        Ok(job)
    }

    /// Waits until no submission is between its journal append and its map
    /// insert. Called by snapshot capture after reading the journal seq it
    /// intends to cover, so every covered `JobSubmitted` record has its job
    /// visible in [`list`](JobStore::list).
    pub fn submit_barrier(&self) {
        drop(sync::write(&self.submit_gate));
    }

    /// Rehydrates a journal-recovered job. Terminal jobs (including
    /// `Interrupted`) are installed as-is; `Queued` jobs re-enter the run
    /// queue — unless their graph no longer exists (`entry` is `None`), in
    /// which case they fail immediately. `entry` may be a
    /// [`GraphEntry::detached`] placeholder for terminal jobs whose graph
    /// was deleted.
    pub fn restore(
        self: &Arc<Self>,
        recovered: RecoveredJob,
        entry: Option<Arc<GraphEntry>>,
    ) -> Arc<Job> {
        self.next_id.fetch_max(recovered.id, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let placeholder = |graph_id: u64| {
            GraphEntry::detached(
                graph_id,
                format!("deleted-graph-{graph_id}"),
                "deleted".to_string(),
                mis_graph::Graph::empty(0),
            )
        };
        let graph_missing = entry.is_none();
        let entry = entry.unwrap_or_else(|| placeholder(recovered.request.graph));
        let job = self.new_job(recovered.id, entry, recovered.request);
        {
            let mut state = sync::lock(&job.state);
            state.status = recovered.status;
            state.outcome = recovered.outcome;
            state.error = recovered.error;
            state.mis = recovered.mis;
            if state.status == JobStatus::Queued && graph_missing {
                state.status = JobStatus::Failed;
                state.error = Some(format!(
                    "graph {} was deleted before the crash; the job cannot be re-run",
                    job.request.graph
                ));
                let record = job.finish_record(&state);
                drop(state);
                job.journal_append(&record);
            } else if state.status.is_terminal() {
                job.events.push(format!(
                    "{{\"event\":\"recovered\",\"status\":{}}}",
                    json_string(&format!("{:?}", state.status).to_lowercase())
                ));
            }
        }
        let status = job.status();
        if status.is_terminal() {
            job.events.close();
        }
        sync::write(&self.jobs).insert(job.id, Arc::clone(&job));
        if status == JobStatus::Queued {
            sync::lock(&self.queue).push_back(Arc::clone(&job));
            self.available.notify_one();
        }
        job
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        sync::read(&self.jobs).get(&id).cloned()
    }

    /// All jobs, in id order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        sync::read(&self.jobs).values().cloned().collect()
    }

    /// All non-terminal jobs targeting graph `graph_id`.
    pub fn jobs_on_graph(&self, graph_id: u64) -> Vec<Arc<Job>> {
        self.list()
            .into_iter()
            .filter(|j| j.entry.id == graph_id && !j.status().is_terminal())
            .collect()
    }

    /// Aggregate job gauges for `GET /v1/metrics`.
    pub fn gauges(&self) -> JobGauges {
        let mut gauges = JobGauges {
            submitted: self.submitted.load(Ordering::Relaxed),
            ..JobGauges::default()
        };
        for job in self.list() {
            match job.status() {
                JobStatus::Queued => gauges.queued += 1,
                JobStatus::Running => gauges.running += 1,
                JobStatus::Completed => gauges.completed += 1,
                JobStatus::Cancelled => gauges.cancelled += 1,
                JobStatus::Failed => gauges.failed += 1,
                JobStatus::Interrupted => gauges.interrupted += 1,
            }
        }
        gauges
    }

    /// `true` once [`drain`](Self::drain) was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Stops intake, cancels everything still queued, lets running jobs
    /// finish, and joins the worker pool. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Cancel the backlog so no worker picks up new work.
        loop {
            let job = sync::lock(&self.queue).pop_front();
            match job {
                Some(job) => {
                    job.cancel();
                }
                None => break,
            }
        }
        self.available.notify_all();
        let handles = std::mem::take(&mut *sync::lock(&self.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Crash simulation: stops intake and flags every non-terminal job for
    /// cancellation, but does NOT wait for workers — the pool threads are
    /// detached mid-flight, exactly as a process kill would leave them.
    /// The journal must be [sealed](Journal::seal) *before* calling this so
    /// stale workers cannot append into files a successor now owns.
    pub fn abandon(&self) {
        self.draining.store(true, Ordering::SeqCst);
        sync::lock(&self.queue).clear();
        for job in self.list() {
            if !job.status().is_terminal() {
                job.cancel.store(true, Ordering::SeqCst);
            }
        }
        self.available.notify_all();
        // Drop the handles without joining: the threads wind down on their
        // own, and their journal appends bounce off the seal.
        drop(std::mem::take(&mut *sync::lock(&self.workers)));
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut queue = sync::lock(&self.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (q, _) = self
                        .available
                        .wait_timeout(queue, Duration::from_millis(200))
                        .unwrap_or_else(PoisonError::into_inner);
                    queue = q;
                }
            };
            let Some(job) = job else { return };
            if self.draining.load(Ordering::SeqCst) {
                job.cancel();
                continue;
            }
            execute(&job);
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Transitions the job to `Running` (unless already cancelled) and runs it,
/// converting panics into `Failed`.
fn execute(job: &Arc<Job>) {
    {
        let mut state = sync::lock(&job.state);
        if state.status != JobStatus::Queued {
            return; // cancelled while queued
        }
        state.status = JobStatus::Running;
    }
    job.journal_append(&Record::JobStarted { id: job.id });
    let result = catch_unwind(AssertUnwindSafe(|| run_job(job)));
    let mut state = sync::lock(&job.state);
    match result {
        Ok(Ok(RunEnd::Completed { outcome, mis })) => {
            job.events.push(format!(
                "{{\"event\":\"done\",\"status\":\"completed\",\"rounds\":{},\"stabilized\":{},\"valid_mis\":{}}}",
                outcome.rounds, outcome.stabilized, outcome.valid_mis
            ));
            state.status = JobStatus::Completed;
            state.outcome = Some(outcome);
            state.mis = Some(mis);
        }
        Ok(Ok(RunEnd::Cancelled)) => {
            job.events
                .push("{\"event\":\"done\",\"status\":\"cancelled\"}".to_string());
            state.status = JobStatus::Cancelled;
        }
        Ok(Err(message)) => {
            job.events.push(format!(
                "{{\"event\":\"done\",\"status\":\"failed\",\"error\":{}}}",
                json_string(&message)
            ));
            state.status = JobStatus::Failed;
            state.error = Some(message);
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            job.events.push(format!(
                "{{\"event\":\"done\",\"status\":\"failed\",\"error\":{}}}",
                json_string(&message)
            ));
            state.status = JobStatus::Failed;
            state.error = Some(message);
        }
    }
    let record = job.finish_record(&state);
    drop(state);
    job.journal_append(&record);
    job.events.close();
}

enum RunEnd {
    Completed {
        outcome: JobOutcome,
        mis: Vec<usize>,
    },
    Cancelled,
}

/// Minimal JSON string escaping for event lines.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn run_job(job: &Arc<Job>) -> Result<RunEnd, String> {
    let request = &job.request;
    let factory = builtin_registry()
        .get(&request.algorithm)
        .ok_or_else(|| format!("unknown algorithm '{}'", request.algorithm))?;

    let (graph, version) = job.entry.snapshot();
    job.snapshot_version.store(version, Ordering::SeqCst);

    let mut rng = ChaCha8Rng::seed_from_u64(request.seed);
    let config = AlgorithmConfig {
        init: request.init,
        execution: request.execution,
        strategy: request.strategy,
        counter_seed: request.seed ^ COUNTER_SEED_SALT,
    };
    let start = Instant::now();
    let mut algorithm = factory.init(&graph, &config, &mut rng);
    *sync::lock(&job.topology_capable) = Some(algorithm.supports_topology_change());

    if !request.scheduler.is_synchronous() && !algorithm.supports_partial_activation() {
        return Err(format!(
            "algorithm '{}' does not support the {} scheduler",
            request.algorithm,
            request.scheduler.label()
        ));
    }
    let mut scheduler = request.scheduler.build();
    let trace = request.record_trace && algorithm.supports_trace();
    let linger = Duration::from_micros(job.request.linger_micros);
    let mut mutations_applied = 0usize;
    let mut stable_since: Option<Instant> = None;

    loop {
        if job.cancel.load(Ordering::SeqCst) {
            return Ok(RunEnd::Cancelled);
        }
        let mut mutated = false;
        for delta in job.take_mail() {
            match algorithm.apply_mutation(&delta) {
                Ok(committed) => {
                    mutations_applied += 1;
                    mutated = true;
                    job.events.push(format!(
                        "{{\"event\":\"topology\",\"round\":{},\"inserted\":{},\"removed\":{},\"new_n\":{}}}",
                        algorithm.round(),
                        committed.inserted.len(),
                        committed.removed.len(),
                        committed.new_n
                    ));
                }
                Err(e) => {
                    job.events.push(format!(
                        "{{\"event\":\"mutation_rejected\",\"round\":{},\"error\":{}}}",
                        algorithm.round(),
                        json_string(&e.to_string())
                    ));
                }
            }
        }
        if mutated {
            stable_since = None;
        }
        if algorithm.is_stabilized() {
            let since = *stable_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= linger || job.drain_flag.load(Ordering::SeqCst) {
                break;
            }
            thread::sleep(POLL_INTERVAL.min(linger));
            continue;
        }
        stable_since = None;
        if algorithm.round() >= request.max_rounds {
            break;
        }
        let activation = scheduler.next_activation(algorithm.n(), algorithm.round(), &mut rng);
        algorithm.step(StepCtx {
            rng: &mut rng,
            activation: &activation,
        });
        if trace {
            let counts = algorithm.counts();
            job.events.push(format!(
                "{{\"event\":\"round\",\"round\":{},\"black\":{},\"active\":{},\"unstable\":{}}}",
                algorithm.round(),
                counts.black,
                counts.active,
                counts.unstable
            ));
        }
        if request.round_delay_micros > 0 {
            thread::sleep(Duration::from_micros(request.round_delay_micros));
        }
    }

    let black = algorithm.black_set();
    let final_graph = algorithm.current_graph().unwrap_or(&graph);
    let outcome = JobOutcome {
        rounds: algorithm.round(),
        stabilized: algorithm.is_stabilized(),
        valid_mis: mis_check::is_mis(final_graph, &black),
        mis_size: black.len(),
        n: final_graph.n(),
        m: final_graph.m(),
        random_bits: algorithm.random_bits_used(),
        states_per_vertex: algorithm.states_per_vertex(),
        mutations_applied,
        wall_micros: start.elapsed().as_micros() as u64,
    };
    let mis = black.iter().collect();
    Ok(RunEnd::Completed { outcome, mis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::GraphRegistry;
    use mis_graph::Graph;

    fn wait_terminal(job: &Arc<Job>) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(20);
        while !job.status().is_terminal() {
            assert!(Instant::now() < deadline, "job {} hung", job.id);
            thread::sleep(Duration::from_millis(2));
        }
        job.status()
    }

    fn registry_with_path(n: usize) -> (GraphRegistry, Arc<GraphEntry>) {
        let registry = GraphRegistry::new();
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let entry = registry.insert(
            "path".into(),
            "upload".into(),
            Graph::from_edges(n, edges).unwrap(),
        );
        (registry, entry)
    }

    #[test]
    fn jobs_complete_with_valid_mis() {
        let (_registry, entry) = registry_with_path(50);
        let store = JobStore::start(2, 0, None);
        let job = store
            .submit(Arc::clone(&entry), JobRequest::new(entry.id, "two-state"))
            .unwrap();
        assert_eq!(wait_terminal(&job), JobStatus::Completed);
        let info = job.info();
        let outcome = info.outcome.unwrap();
        assert!(outcome.stabilized && outcome.valid_mis);
        assert_eq!(outcome.mutations_applied, 0);
        assert_eq!(job.mis().unwrap().len(), outcome.mis_size);
        store.drain();
    }

    #[test]
    fn unknown_algorithm_is_rejected_at_submit() {
        let (_registry, entry) = registry_with_path(4);
        let store = JobStore::start(1, 0, None);
        assert!(matches!(
            store.submit(Arc::clone(&entry), JobRequest::new(entry.id, "nope")),
            Err(SubmitError::UnknownAlgorithm(_))
        ));
        store.drain();
    }

    #[test]
    fn full_queue_sheds_load_with_a_typed_error() {
        let (_registry, entry) = registry_with_path(10);
        let store = JobStore::start(1, 2, None);
        // Occupy the single worker with a lingering job, then fill the queue.
        let mut slow = JobRequest::new(entry.id, "two-state");
        slow.linger_micros = 60_000_000;
        let running = store.submit(Arc::clone(&entry), slow).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(running.status(), JobStatus::Running);
        for _ in 0..2 {
            store
                .submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy"))
                .unwrap();
        }
        assert!(matches!(
            store.submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy")),
            Err(SubmitError::QueueFull { capacity: 2 })
        ));
        store.drain();
    }

    #[test]
    fn unsupported_scheduler_fails_the_job() {
        let (_registry, entry) = registry_with_path(6);
        let store = JobStore::start(1, 0, None);
        let mut request = JobRequest::new(entry.id, "luby");
        request.scheduler = mis_sim::spec::SchedulerSpec::RandomSubset { p: 0.5 };
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        assert_eq!(wait_terminal(&job), JobStatus::Failed);
        assert!(job.info().error.unwrap().contains("scheduler"));
        store.drain();
    }

    #[test]
    fn cancelling_a_lingering_job_stops_it() {
        let (_registry, entry) = registry_with_path(20);
        let store = JobStore::start(1, 0, None);
        let mut request = JobRequest::new(entry.id, "two-state");
        request.linger_micros = 60_000_000; // would linger for a minute
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        // Wait until it is resident (stabilized but lingering).
        thread::sleep(Duration::from_millis(50));
        assert_eq!(job.status(), JobStatus::Running);
        assert!(job.cancel());
        assert_eq!(wait_terminal(&job), JobStatus::Cancelled);
        assert!(!job.cancel(), "cancel is idempotent on terminal jobs");
        store.drain();
    }

    #[test]
    fn live_delta_reaches_a_lingering_job_and_restabilizes() {
        let (registry, entry) = registry_with_path(30);
        let store = JobStore::start(1, 0, None);
        let mut request = JobRequest::new(entry.id, "two-state");
        request.linger_micros = 30_000_000;
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(job.status(), JobStatus::Running);

        // Patch the registry graph, then forward the delta like the handler.
        let mut delta = GraphDelta::new();
        delta.add_vertex([0, 2, 4]);
        delta.remove_edge(0, 1);
        let (_committed, version) = registry.apply_delta(entry.id, &delta).unwrap().unwrap();
        assert_eq!(job.push_delta(&delta, version), Some(true));

        // Give it time to apply + re-stabilize, then cancel the linger.
        thread::sleep(Duration::from_millis(100));
        job.cancel();
        assert_eq!(wait_terminal(&job), JobStatus::Cancelled);
        store.drain();
    }

    #[test]
    fn drain_cancels_queued_jobs_and_joins() {
        let (_registry, entry) = registry_with_path(10);
        let store = JobStore::start(1, 0, None);
        // A lingering job occupies the single worker, so the rest stay
        // queued until drain.
        let mut slow = JobRequest::new(entry.id, "two-state");
        slow.linger_micros = 60_000_000;
        let running = store.submit(Arc::clone(&entry), slow).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(running.status(), JobStatus::Running);
        let queued: Vec<_> = (0..4)
            .map(|_| {
                store
                    .submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy"))
                    .unwrap()
            })
            .collect();
        store.drain();
        assert!(store.is_draining());
        // Drain breaks the linger: the resident job completes rather than
        // wedging shutdown for the rest of its linger window.
        assert_eq!(running.status(), JobStatus::Completed);
        for job in queued {
            assert_eq!(job.status(), JobStatus::Cancelled);
        }
        assert!(matches!(
            store.submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy")),
            Err(SubmitError::Draining)
        ));
        let gauges = store.gauges();
        assert_eq!(gauges.submitted, 5);
        assert_eq!(gauges.queued + gauges.running, 0);
    }

    #[test]
    fn restore_rehydrates_terminal_and_queued_jobs() {
        let (_registry, entry) = registry_with_path(12);
        let store = JobStore::start(1, 0, None);
        // A terminal interrupted job: installed as-is, never re-run.
        let interrupted = store.restore(
            RecoveredJob {
                id: 5,
                request: JobRequest::new(entry.id, "two-state"),
                status: JobStatus::Interrupted,
                outcome: None,
                error: Some("interrupted".into()),
                mis: None,
            },
            Some(Arc::clone(&entry)),
        );
        assert_eq!(interrupted.status(), JobStatus::Interrupted);
        // A queued job with a live graph: re-runs to completion.
        let requeued = store.restore(
            RecoveredJob {
                id: 6,
                request: JobRequest::new(entry.id, "greedy"),
                status: JobStatus::Queued,
                outcome: None,
                error: None,
                mis: None,
            },
            Some(Arc::clone(&entry)),
        );
        assert_eq!(wait_terminal(&requeued), JobStatus::Completed);
        // A queued job whose graph is gone: fails instead of hanging.
        let orphan = store.restore(
            RecoveredJob {
                id: 7,
                request: JobRequest::new(99, "greedy"),
                status: JobStatus::Queued,
                outcome: None,
                error: None,
                mis: None,
            },
            None,
        );
        assert_eq!(orphan.status(), JobStatus::Failed);
        assert!(orphan.info().error.unwrap().contains("deleted"));
        // Ids continue past restored ones; the interrupted job still counts.
        let fresh = store
            .submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy"))
            .unwrap();
        assert_eq!(fresh.id, 8);
        let gauges = store.gauges();
        assert_eq!(gauges.interrupted, 1);
        assert_eq!(gauges.failed, 1);
        store.drain();
    }

    #[test]
    fn abandon_detaches_without_joining() {
        let (_registry, entry) = registry_with_path(10);
        let store = JobStore::start(1, 0, None);
        let mut slow = JobRequest::new(entry.id, "two-state");
        slow.linger_micros = 60_000_000;
        let running = store.submit(Arc::clone(&entry), slow).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(running.status(), JobStatus::Running);
        let start = Instant::now();
        store.abandon();
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "abandon must not block on workers"
        );
        assert!(matches!(
            store.submit(Arc::clone(&entry), JobRequest::new(entry.id, "greedy")),
            Err(SubmitError::Draining)
        ));
    }

    #[test]
    fn event_stream_replays_and_terminates() {
        let (_registry, entry) = registry_with_path(12);
        let store = JobStore::start(1, 0, None);
        let mut request = JobRequest::new(entry.id, "three-state");
        request.record_trace = true;
        let job = store.submit(Arc::clone(&entry), request).unwrap();
        assert_eq!(wait_terminal(&job), JobStatus::Completed);
        let mut stream = ndjson_stream(job.events());
        let mut text = String::new();
        while let Some(chunk) = stream() {
            text.push_str(std::str::from_utf8(&chunk).unwrap());
        }
        assert!(text.contains("\"event\":\"round\""));
        assert!(text
            .lines()
            .last()
            .unwrap()
            .contains("\"status\":\"completed\""));
        store.drain();
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
