//! A synchronous randomized *self-stabilizing* MIS baseline in the spirit of
//! Turau (2019): it stabilizes in `O(log n)` rounds w.h.p. from any initial
//! state, but pays for that with `Θ(log n)` fresh random bits per vertex per
//! round and `Θ(log n)`-bit messages — the cost that the paper's
//! constant-state, one-random-bit processes eliminate.

use mis_core::{Process, StateCounts};
use mis_graph::{Graph, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Per-vertex state of [`RandomPriorityMis`]: in or out of the candidate MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Membership {
    /// The vertex currently claims MIS membership.
    In,
    /// The vertex currently does not claim membership.
    Out,
}

/// Summary of a completed [`RandomPriorityMis`] run (used by experiment E10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomPriorityOutcome {
    /// The stabilized maximal independent set.
    pub mis: VertexSet,
    /// Rounds until stabilization.
    pub rounds: usize,
    /// Total random bits drawn.
    pub random_bits: u64,
}

/// Synchronous randomized self-stabilizing MIS with per-round random
/// priorities.
///
/// Every round, every vertex draws a fresh 32-bit priority. Then, in
/// parallel:
///
/// * an `In` vertex with an `In` neighbor of higher (priority, id) leaves;
/// * an `Out` vertex whose (priority, id) beats all of its non-dominated
///   neighbors joins.
///
/// The rule only depends on the current round's priorities and the current
/// membership vector, so the algorithm is self-stabilizing; it stabilizes in
/// `O(log n)` rounds w.h.p. Because it implements [`Process`], the same
/// experiment harness that measures the paper's processes can measure it.
#[derive(Debug, Clone)]
pub struct RandomPriorityMis<'g> {
    graph: &'g Graph,
    membership: Vec<Membership>,
    round: usize,
    random_bits: u64,
}

impl<'g> RandomPriorityMis<'g> {
    /// Creates the algorithm with an explicit initial membership vector.
    ///
    /// # Panics
    ///
    /// Panics if `membership.len() != graph.n()`.
    pub fn new(graph: &'g Graph, membership: Vec<Membership>) -> Self {
        assert_eq!(
            membership.len(),
            graph.n(),
            "initial membership vector length must equal the number of vertices"
        );
        RandomPriorityMis {
            graph,
            membership,
            round: 0,
            random_bits: 0,
        }
    }

    /// Creates the algorithm with every vertex initially `Out`.
    pub fn all_out(graph: &'g Graph) -> Self {
        Self::new(graph, vec![Membership::Out; graph.n()])
    }

    /// Creates the algorithm with a uniformly random membership vector
    /// (an arbitrary initial configuration, as self-stabilization demands).
    pub fn random_init<R: Rng + ?Sized>(graph: &'g Graph, rng: &mut R) -> Self {
        let membership = (0..graph.n())
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Membership::In
                } else {
                    Membership::Out
                }
            })
            .collect();
        Self::new(graph, membership)
    }

    /// Current membership of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn membership(&self, u: VertexId) -> Membership {
        self.membership[u]
    }

    /// Overwrites the membership of vertex `u` in place, modelling a
    /// transient fault that corrupts the vertex's memory.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_membership(&mut self, u: VertexId, membership: Membership) {
        self.membership[u] = membership;
    }

    /// Runs until stabilization (at most `max_rounds` rounds) and returns the
    /// outcome summary.
    ///
    /// # Errors
    ///
    /// Returns [`mis_core::StabilizationTimeout`] if the round budget is
    /// exhausted first.
    pub fn run<R: Rng>(
        &mut self,
        rng: &mut R,
        max_rounds: usize,
    ) -> Result<RandomPriorityOutcome, mis_core::StabilizationTimeout> {
        let rounds = Process::run_to_stabilization(self, rng, max_rounds)?;
        Ok(RandomPriorityOutcome {
            mis: self.black_set(),
            rounds,
            random_bits: self.random_bits,
        })
    }

    fn is_in(&self, u: VertexId) -> bool {
        self.membership[u] == Membership::In
    }

    /// `u` is dominated if it or a neighbor is a *stable* MIS member, i.e. an
    /// `In` vertex with no `In` neighbor.
    fn stable_in(&self, u: VertexId) -> bool {
        self.is_in(u) && !self.graph.neighbors(u).iter().any(|v| self.is_in(v))
    }
}

impl Process for RandomPriorityMis<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.n();
        let mut priority = vec![0u32; n];
        for u in self.graph.vertices() {
            priority[u] = rng.gen::<u32>();
            self.random_bits += 32;
        }
        let old = self.membership.clone();
        let beats = |u: VertexId, v: VertexId| (priority[u], u) > (priority[v], v);
        for u in self.graph.vertices() {
            let has_in_neighbor = self
                .graph
                .neighbors(u)
                .iter()
                .any(|v| old[v] == Membership::In);
            self.membership[u] = match old[u] {
                Membership::In => {
                    if self
                        .graph
                        .neighbors(u)
                        .iter()
                        .any(|v| old[v] == Membership::In && beats(v, u))
                    {
                        Membership::Out
                    } else {
                        Membership::In
                    }
                }
                Membership::Out => {
                    if !has_in_neighbor
                        && self
                            .graph
                            .neighbors(u)
                            .iter()
                            .all(|v| old[v] == Membership::In || beats(u, v))
                    {
                        Membership::In
                    } else {
                        Membership::Out
                    }
                }
            };
        }
        self.round += 1;
    }

    fn is_stabilized(&self) -> bool {
        self.graph
            .vertices()
            .all(|u| self.stable_in(u) || self.graph.neighbors(u).iter().any(|v| self.stable_in(v)))
    }

    fn black_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n(), self.graph.vertices().filter(|&u| self.is_in(u)))
    }

    fn active_set(&self) -> VertexSet {
        // Vertices whose membership could still change: not yet covered by a
        // stable MIS member.
        self.unstable_set()
    }

    fn stable_black_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.stable_in(u)),
        )
    }

    fn unstable_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| {
                !self.stable_in(u) && !self.graph.neighbors(u).iter().any(|v| self.stable_in(v))
            }),
        )
    }

    fn counts(&self) -> StateCounts {
        let mut c = StateCounts::default();
        for u in self.graph.vertices() {
            if self.is_in(u) {
                c.black += 1;
            } else {
                c.non_black += 1;
            }
            if self.stable_in(u) {
                c.stable_black += 1;
            }
        }
        c.unstable = self.unstable_set().len();
        c.active = c.unstable;
        c
    }

    fn states_per_vertex(&self) -> usize {
        // Membership bit plus the fresh 32-bit priority communicated each round.
        2 * (u32::MAX as usize + 1)
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn stabilizes_quickly_on_random_graphs() {
        let mut r = rng(0);
        let g = generators::gnp(1000, 0.01, &mut r);
        let mut alg = RandomPriorityMis::all_out(&g);
        let out = alg.run(&mut r, 10_000).unwrap();
        assert!(mis_check::is_mis(&g, &out.mis));
        assert!(out.rounds < 60, "took {} rounds", out.rounds);
    }

    #[test]
    fn self_stabilizes_from_adversarial_all_in_state() {
        let mut r = rng(1);
        let g = generators::complete(40);
        let mut alg = RandomPriorityMis::new(&g, vec![Membership::In; 40]);
        let out = alg.run(&mut r, 10_000).unwrap();
        assert_eq!(out.mis.len(), 1);
        assert!(mis_check::is_mis(&g, &out.mis));
    }

    #[test]
    fn counts_and_sets_are_consistent() {
        let mut r = rng(2);
        let g = generators::gnp(60, 0.1, &mut r);
        let mut alg = RandomPriorityMis::random_init(&g, &mut r);
        for _ in 0..30 {
            let c = alg.counts();
            assert_eq!(c.black, alg.black_set().len());
            assert_eq!(c.stable_black, alg.stable_black_set().len());
            assert_eq!(c.unstable, alg.unstable_set().len());
            assert!(mis_check::is_independent(&g, &alg.stable_black_set()));
            if alg.is_stabilized() {
                break;
            }
            Process::step(&mut alg, &mut r);
        }
    }

    #[test]
    fn uses_many_more_random_bits_than_the_two_state_process() {
        let mut r = rng(3);
        let g = generators::gnp(200, 0.05, &mut r);
        let mut alg = RandomPriorityMis::random_init(&g, &mut r);
        let out = alg.run(&mut r, 10_000).unwrap();
        // 32 bits per vertex per round is the designed cost of this baseline.
        assert_eq!(out.random_bits, 32 * g.n() as u64 * out.rounds as u64);
    }

    proptest! {
        #[test]
        fn stabilizes_from_arbitrary_states(seed in 0u64..2000, n in 1usize..60, p in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p, &mut r);
            let mut alg = RandomPriorityMis::random_init(&g, &mut r);
            let out = alg.run(&mut r, 100_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &out.mis));
        }
    }
}
