//! Baseline MIS algorithms the paper positions itself against.
//!
//! The paper's processes are compared, in its introduction and related-work
//! section, with three families of algorithms. Since no open-source
//! implementations of the exact comparators exist, this crate re-implements
//! representative members of each family:
//!
//! * [`luby`] — Luby's classical randomized distributed MIS algorithm
//!   (random-priority variant): `O(log n)` rounds w.h.p., but needs
//!   `Θ(log n)` random bits and `Θ(log n)`-bit messages per round and is
//!   **not** self-stabilizing.
//! * [`greedy`] — the sequential greedy MIS (lexicographic or random order),
//!   the standard centralized reference point.
//! * [`sequential_selfstab`] — the deterministic 2-state self-stabilizing
//!   algorithm of Shukla et al. / Hedetniemi et al. under a central
//!   scheduler: each move fixes one "privileged" vertex; stabilizes within
//!   `2n` moves but is inherently sequential.
//! * [`random_priority`] — a synchronous randomized self-stabilizing MIS in
//!   the spirit of Turau (2019): fresh `Θ(log n)`-bit random priorities
//!   every round, stabilizes in `O(log n)` rounds w.h.p., but uses
//!   super-constant state and randomness — exactly the cost the paper's
//!   constant-state processes avoid.
//!
//! Every algorithm validates its output against
//! [`mis_graph::mis_check::is_mis`] in its tests, and reports the resource
//! metrics (rounds/moves, random bits) used by the comparison experiment
//! (E10 in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod greedy;
pub mod luby;
pub mod random_priority;
pub mod sequential_selfstab;

pub use adapters::{
    register_baseline_algorithms, FinishedMis, OneShotAlgorithm, RandomPriorityAlgorithm,
};
pub use greedy::{greedy_mis, greedy_mis_random_order};
pub use luby::{luby_mis, LubyOutcome};
pub use random_priority::{RandomPriorityMis, RandomPriorityOutcome};
pub use sequential_selfstab::{SequentialOutcome, SequentialScheduler, SequentialSelfStabMis};
