//! Luby's randomized distributed MIS algorithm (random-priority variant).

use mis_graph::{Graph, VertexId, VertexSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of a run of [`luby_mis`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LubyOutcome {
    /// The computed maximal independent set.
    pub mis: VertexSet,
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total random bits drawn (`32` per live vertex per round — the
    /// `Θ(log n)` randomness cost the paper's processes avoid).
    pub random_bits: u64,
}

/// Runs Luby's algorithm (the random-priority variant, as in Luby 1986 and
/// Alon–Babai–Itai 1986) until every vertex is decided.
///
/// In each round every still-undecided vertex draws a fresh 32-bit priority;
/// a vertex whose priority is a strict local maximum among its undecided
/// neighbors (ties broken by vertex id) joins the MIS, and its neighbors
/// leave the graph. Terminates in `O(log n)` rounds w.h.p.
///
/// This baseline is **not self-stabilizing** (it assumes the dedicated
/// "undecided" start state) and uses `Θ(log n)` random bits and message bits
/// per round, which is exactly the comparison point of experiment E10.
///
/// # Example
///
/// ```
/// use mis_baselines::luby_mis;
/// use mis_graph::{generators, mis_check};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
/// let g = generators::gnp(200, 0.05, &mut rng);
/// let out = luby_mis(&g, &mut rng);
/// assert!(mis_check::is_mis(&g, &out.mis));
/// ```
pub fn luby_mis<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> LubyOutcome {
    let n = g.n();
    let mut in_mis = VertexSet::new(n);
    // live[u]: u has not yet joined the MIS nor been dominated by it.
    let mut live: Vec<bool> = vec![true; n];
    let mut live_count = n;
    let mut rounds = 0usize;
    let mut random_bits = 0u64;
    let mut priority: Vec<u32> = vec![0; n];

    while live_count > 0 {
        rounds += 1;
        for u in g.vertices() {
            if live[u] {
                priority[u] = rng.gen::<u32>();
                random_bits += 32;
            }
        }
        // A live vertex joins if it beats every live neighbor.
        let winners: Vec<VertexId> = g
            .vertices()
            .filter(|&u| live[u])
            .filter(|&u| {
                g.neighbors(u)
                    .iter()
                    .all(|v| !live[v] || (priority[u], u) > (priority[v], v))
            })
            .collect();
        for &u in &winners {
            in_mis.insert(u);
            if live[u] {
                live[u] = false;
                live_count -= 1;
            }
            for v in g.neighbors(u) {
                if live[v] {
                    live[v] = false;
                    live_count -= 1;
                }
            }
        }
    }

    LubyOutcome {
        mis: in_mis,
        rounds,
        random_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check, Graph};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let mut r = rng(0);
        let out = luby_mis(&Graph::empty(0), &mut r);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.mis.len(), 0);
        let out = luby_mis(&Graph::empty(7), &mut r);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.mis.len(), 7);
    }

    #[test]
    fn clique_yields_single_vertex() {
        let mut r = rng(1);
        let g = generators::complete(30);
        let out = luby_mis(&g, &mut r);
        assert_eq!(out.mis.len(), 1);
        assert!(mis_check::is_mis(&g, &out.mis));
    }

    #[test]
    fn rounds_are_logarithmic_on_random_graphs() {
        let mut r = rng(2);
        let g = generators::gnp(2000, 0.01, &mut r);
        let out = luby_mis(&g, &mut r);
        assert!(mis_check::is_mis(&g, &out.mis));
        // O(log n) w.h.p.; 2000 vertices => comfortably below 60 rounds.
        assert!(out.rounds < 60, "Luby took {} rounds", out.rounds);
        assert!(out.random_bits > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp(100, 0.1, &mut rng(3));
        let a = luby_mis(&g, &mut rng(9));
        let b = luby_mis(&g, &mut rng(9));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn always_produces_an_mis(seed in 0u64..2000, n in 0usize..80, p in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p, &mut r);
            let out = luby_mis(&g, &mut r);
            prop_assert!(mis_check::is_mis(&g, &out.mis));
        }
    }
}
