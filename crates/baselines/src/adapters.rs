//! [`Algorithm`] adapters and factories for the baseline MIS algorithms.
//!
//! The random-priority baseline is a genuine synchronous process and wraps
//! like the paper's processes. Luby's algorithm, the sequential greedy, and
//! the deterministic sequential self-stabilizing algorithm are *one-shot*:
//! their factories run the whole algorithm during
//! [`AlgorithmFactory::init`] (consuming the trial RNG exactly as the
//! pre-registry harness did) and wrap the result in a [`FinishedMis`], a
//! terminated process that reports the outcome's metrics.

use mis_core::algorithm::{
    fault_victims, Algorithm, AlgorithmConfig, AlgorithmFactory, CommunicationModel, Registry,
};
use mis_core::{Process, StateCounts};
use mis_graph::{Graph, VertexSet};
use rand::{Rng, RngCore};

use crate::greedy::greedy_mis_random_order;
use crate::luby::luby_mis;
use crate::random_priority::{Membership, RandomPriorityMis};
use crate::sequential_selfstab::{SequentialScheduler, SequentialSelfStabMis};

/// Registry key of the random-priority baseline.
pub const RANDOM_PRIORITY_KEY: &str = "random-priority";
/// Registry key of Luby's algorithm.
pub const LUBY_KEY: &str = "luby";
/// Registry key of the greedy baseline.
pub const GREEDY_KEY: &str = "greedy";
/// Registry key of the sequential self-stabilizing baseline.
pub const SEQUENTIAL_SELFSTAB_KEY: &str = "sequential-selfstab";

/// A terminated MIS computation exposed through the [`Process`] interface:
/// every vertex is stable, the black set is the computed MIS, and the
/// reported `round` count is the cost the algorithm already paid (rounds
/// for Luby, 1 for greedy, moves for the sequential baseline).
#[derive(Debug, Clone)]
pub struct FinishedMis {
    n: usize,
    mis: VertexSet,
    rounds: usize,
    random_bits: u64,
    states_per_vertex: usize,
}

impl FinishedMis {
    /// Wraps a computed MIS with its cost metrics.
    pub fn new(
        n: usize,
        mis: VertexSet,
        rounds: usize,
        random_bits: u64,
        states_per_vertex: usize,
    ) -> Self {
        assert_eq!(mis.universe(), n, "MIS universe must match the graph");
        FinishedMis {
            n,
            mis,
            rounds,
            random_bits,
            states_per_vertex,
        }
    }
}

impl Process for FinishedMis {
    fn n(&self) -> usize {
        self.n
    }

    fn round(&self) -> usize {
        self.rounds
    }

    fn step(&mut self, _rng: &mut dyn RngCore) {
        // Already terminated; a step changes nothing.
    }

    fn is_stabilized(&self) -> bool {
        true
    }

    fn black_set(&self) -> VertexSet {
        self.mis.clone()
    }

    fn active_set(&self) -> VertexSet {
        VertexSet::new(self.n)
    }

    fn stable_black_set(&self) -> VertexSet {
        self.mis.clone()
    }

    fn unstable_set(&self) -> VertexSet {
        VertexSet::new(self.n)
    }

    fn counts(&self) -> StateCounts {
        StateCounts {
            black: self.mis.len(),
            non_black: self.n - self.mis.len(),
            active: 0,
            stable_black: self.mis.len(),
            unstable: 0,
        }
    }

    fn states_per_vertex(&self) -> usize {
        self.states_per_vertex
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

/// A one-shot baseline outcome as a pluggable [`Algorithm`].
#[derive(Debug, Clone)]
pub struct OneShotAlgorithm {
    finished: FinishedMis,
    name: &'static str,
    model: CommunicationModel,
}

impl OneShotAlgorithm {
    /// Wraps a finished run under a registry name.
    pub fn new(finished: FinishedMis, name: &'static str, model: CommunicationModel) -> Self {
        OneShotAlgorithm {
            finished,
            name,
            model,
        }
    }
}

impl Algorithm for OneShotAlgorithm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn communication_model(&self) -> CommunicationModel {
        self.model
    }

    fn process(&self) -> &dyn Process {
        &self.finished
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.finished
    }

    fn supports_trace(&self) -> bool {
        // The run happened inside the factory; there are no per-round
        // configurations to trace.
        false
    }
}

/// The random-priority self-stabilizing baseline as a pluggable
/// [`Algorithm`].
#[derive(Debug, Clone)]
pub struct RandomPriorityAlgorithm<'g> {
    inner: RandomPriorityMis<'g>,
}

impl<'g> RandomPriorityAlgorithm<'g> {
    /// Wraps an existing instance.
    pub fn new(inner: RandomPriorityMis<'g>) -> Self {
        RandomPriorityAlgorithm { inner }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &RandomPriorityMis<'g> {
        &self.inner
    }
}

impl Algorithm for RandomPriorityAlgorithm<'_> {
    fn name(&self) -> &'static str {
        RANDOM_PRIORITY_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::MessagePassing
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        for u in fault_victims(self.inner.n(), fraction, rng) {
            let membership = if rng.gen_bool(0.5) {
                Membership::In
            } else {
                Membership::Out
            };
            if self.inner.membership(u) != membership {
                changed += 1;
            }
            self.inner.set_membership(u, membership);
        }
        changed
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }
}

struct RandomPriorityFactory;

impl AlgorithmFactory for RandomPriorityFactory {
    fn key(&self) -> &'static str {
        RANDOM_PRIORITY_KEY
    }

    fn description(&self) -> &'static str {
        "random-priority self-stabilizing baseline (Turau-style, fresh 32-bit priorities per round)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::MessagePassing
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        _config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        // Self-stabilization is exercised from a uniformly random membership
        // vector regardless of the init strategy, matching the legacy
        // harness behavior.
        Box::new(RandomPriorityAlgorithm::new(
            RandomPriorityMis::random_init(graph, rng),
        ))
    }
}

struct LubyFactory;

impl AlgorithmFactory for LubyFactory {
    fn key(&self) -> &'static str {
        LUBY_KEY
    }

    fn description(&self) -> &'static str {
        "Luby's randomized distributed MIS (not self-stabilizing; run inside init)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::MessagePassing
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        _config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        let out = luby_mis(graph, rng);
        Box::new(OneShotAlgorithm::new(
            FinishedMis::new(graph.n(), out.mis, out.rounds, out.random_bits, usize::MAX),
            LUBY_KEY,
            CommunicationModel::MessagePassing,
        ))
    }
}

struct GreedyFactory;

impl AlgorithmFactory for GreedyFactory {
    fn key(&self) -> &'static str {
        GREEDY_KEY
    }

    fn description(&self) -> &'static str {
        "sequential greedy MIS in a uniformly random scan order (centralized, one pass)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::Centralized
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        _config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        // One centralized pass; its shuffle randomness is not metered as
        // per-vertex random bits (legacy harness behavior).
        let mis = greedy_mis_random_order(graph, rng);
        Box::new(OneShotAlgorithm::new(
            FinishedMis::new(graph.n(), mis, 1, 0, usize::MAX),
            GREEDY_KEY,
            CommunicationModel::Centralized,
        ))
    }
}

struct SequentialSelfStabFactory;

impl AlgorithmFactory for SequentialSelfStabFactory {
    fn key(&self) -> &'static str {
        SEQUENTIAL_SELFSTAB_KEY
    }

    fn description(&self) -> &'static str {
        "deterministic sequential self-stabilizing MIS under the smallest-id central scheduler"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::Centralized
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        let init = config.init.two_state(graph.n(), rng);
        let mut alg = SequentialSelfStabMis::new(graph, init);
        let out = alg.run(SequentialScheduler::SmallestId, rng);
        // `rounds` carries the move count: the algorithm's natural cost
        // measure under a central scheduler (at most 2n).
        Box::new(OneShotAlgorithm::new(
            FinishedMis::new(graph.n(), out.mis, out.moves, 0, 2),
            SEQUENTIAL_SELFSTAB_KEY,
            CommunicationModel::Centralized,
        ))
    }
}

/// Registers the four baselines (`random-priority`, `luby`, `greedy`,
/// `sequential-selfstab`) in `registry`.
pub fn register_baseline_algorithms(registry: &mut Registry) {
    registry.register(Box::new(RandomPriorityFactory));
    registry.register(Box::new(LubyFactory));
    registry.register(Box::new(GreedyFactory));
    registry.register(Box::new(SequentialSelfStabFactory));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_core::algorithm::StepCtx;
    use mis_core::init::InitStrategy;
    use mis_core::ExecutionMode;
    use mis_graph::{generators, mis_check};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config() -> AlgorithmConfig {
        AlgorithmConfig {
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            strategy: mis_core::RoundStrategy::Auto,
            counter_seed: 0,
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        register_baseline_algorithms(&mut r);
        r
    }

    #[test]
    fn all_baseline_factories_build_valid_mis() {
        let r = registry();
        assert_eq!(
            r.keys(),
            vec!["greedy", "luby", "random-priority", "sequential-selfstab"]
        );
        let mut stream = rng(1);
        let g = generators::gnp(50, 0.1, &mut stream);
        for key in r.keys() {
            let factory = r.get(key).unwrap();
            let mut alg = factory.init(&g, &config(), &mut stream);
            let mut guard = 0;
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 100_000, "{key}");
            }
            assert!(mis_check::is_mis(&g, &alg.black_set()), "{key}");
        }
    }

    #[test]
    fn one_shot_adapters_report_legacy_metrics() {
        let mut stream = rng(3);
        let g = generators::gnp(40, 0.12, &mut stream);

        let greedy = GreedyFactory.init(&g, &config(), &mut stream);
        assert!(greedy.is_stabilized());
        assert_eq!(greedy.round(), 1);
        assert_eq!(greedy.random_bits_used(), 0);
        assert_eq!(greedy.states_per_vertex(), usize::MAX);
        assert!(!greedy.supports_trace());

        let seq = SequentialSelfStabFactory.init(&g, &config(), &mut stream);
        assert!(seq.round() <= 2 * g.n(), "move bound violated");
        assert_eq!(seq.states_per_vertex(), 2);

        let luby = LubyFactory.init(&g, &config(), &mut stream);
        assert!(luby.round() >= 1);
        assert!(luby.random_bits_used() > 0);
    }

    #[test]
    fn finished_mis_is_a_terminated_process() {
        let mis = VertexSet::from_indices(4, [0, 2]);
        let mut f = FinishedMis::new(4, mis.clone(), 7, 9, 2);
        assert!(f.is_stabilized());
        assert_eq!(f.round(), 7);
        let mut r = rng(4);
        f.step(&mut r); // no-op
        assert_eq!(f.round(), 7);
        assert_eq!(f.black_set(), mis);
        assert_eq!(f.stable_black_set(), mis);
        assert_eq!(f.active_set().len(), 0);
        assert_eq!(f.unstable_set().len(), 0);
        let c = f.counts();
        assert_eq!(c.black, 2);
        assert_eq!(c.non_black, 2);
        assert_eq!(c.unstable, 0);
    }

    #[test]
    fn random_priority_supports_fault_injection() {
        let mut stream = rng(5);
        let g = generators::gnp(40, 0.15, &mut stream);
        let mut alg = RandomPriorityFactory.init(&g, &config(), &mut stream);
        assert!(alg.supports_fault_injection());
        let mut guard = 0;
        while !alg.is_stabilized() {
            alg.step(StepCtx::synchronous(&mut stream));
            guard += 1;
            assert!(guard < 100_000);
        }
        alg.inject_faults(1.0, &mut stream);
        while !alg.is_stabilized() {
            alg.step(StepCtx::synchronous(&mut stream));
            guard += 1;
            assert!(guard < 200_000);
        }
        assert!(mis_check::is_mis(&g, &alg.black_set()));
    }
}
