//! Sequential greedy MIS: the centralized reference algorithm.

use mis_graph::{Graph, VertexSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// Computes a maximal independent set by scanning the vertices in increasing
/// id order and adding every vertex with no previously added neighbor.
///
/// Runs in `O(n + m)` time and is the standard centralized baseline.
///
/// # Example
///
/// ```
/// use mis_baselines::greedy_mis;
/// use mis_graph::{generators, mis_check};
///
/// let g = generators::cycle(7);
/// let mis = greedy_mis(&g);
/// assert!(mis_check::is_mis(&g, &mis));
/// ```
pub fn greedy_mis(g: &Graph) -> VertexSet {
    let order: Vec<usize> = g.vertices().collect();
    greedy_mis_in_order(g, &order)
}

/// Computes a maximal independent set by scanning the vertices in a uniformly
/// random order. Useful to measure how much the greedy MIS size varies with
/// the scan order.
pub fn greedy_mis_random_order<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> VertexSet {
    let mut order: Vec<usize> = g.vertices().collect();
    order.shuffle(rng);
    greedy_mis_in_order(g, &order)
}

fn greedy_mis_in_order(g: &Graph, order: &[usize]) -> VertexSet {
    let mut mis = VertexSet::new(g.n());
    let mut blocked = vec![false; g.n()];
    for &u in order {
        if !blocked[u] {
            mis.insert(u);
            blocked[u] = true;
            for v in g.neighbors(u) {
                blocked[v] = true;
            }
        }
    }
    mis
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn greedy_on_known_graphs() {
        let g = generators::path(5);
        let mis = greedy_mis(&g);
        // Scanning 0..4: picks 0, 2, 4.
        assert_eq!(mis.to_vec(), vec![0, 2, 4]);
        assert!(mis_check::is_mis(&g, &mis));

        let g = generators::complete(6);
        assert_eq!(greedy_mis(&g).len(), 1);

        let g = Graph::empty(4);
        assert_eq!(greedy_mis(&g).len(), 4);
    }

    use mis_graph::Graph;

    #[test]
    fn random_order_is_still_an_mis() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::gnp(100, 0.1, &mut rng);
        for _ in 0..5 {
            let mis = greedy_mis_random_order(&g, &mut rng);
            assert!(mis_check::is_mis(&g, &mis));
        }
    }

    proptest! {
        #[test]
        fn greedy_always_produces_an_mis(seed in 0u64..2000, n in 0usize..80, p in 0.0f64..1.0) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::gnp(n, p, &mut rng);
            prop_assert!(mis_check::is_mis(&g, &greedy_mis(&g)));
            prop_assert!(mis_check::is_mis(&g, &greedy_mis_random_order(&g, &mut rng)));
        }
    }
}
