//! The deterministic 2-state sequential self-stabilizing MIS algorithm
//! (Shukla, Rosenkrantz & Ravi 1995; Hedetniemi et al. 2003), which the
//! paper's 2-state process parallelizes.
//!
//! Under a *central scheduler*, one privileged vertex moves per step:
//!
//! * a black vertex with a black neighbor turns white;
//! * a white vertex with no black neighbor turns black.
//!
//! From any initial state the algorithm stabilizes after every vertex has
//! moved at most twice (so within `2n` moves), regardless of the scheduling
//! order — the property the paper cites in its introduction.

use mis_core::Color;
use mis_graph::{Graph, VertexId, VertexSet};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the central scheduler picks the next privileged vertex to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SequentialScheduler {
    /// Always move the privileged vertex with the smallest id (an adversarial
    /// but deterministic choice).
    SmallestId,
    /// Always move the privileged vertex with the largest id.
    LargestId,
    /// Move a uniformly random privileged vertex.
    Random,
}

/// Result of a run of the sequential self-stabilizing algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequentialOutcome {
    /// The stabilized maximal independent set (the black vertices).
    pub mis: VertexSet,
    /// Total number of moves (single-vertex state changes) executed.
    pub moves: usize,
    /// The maximum number of moves made by any single vertex.
    pub max_moves_per_vertex: usize,
}

/// The deterministic sequential self-stabilizing MIS algorithm under a
/// central scheduler.
///
/// # Example
///
/// ```
/// use mis_baselines::{SequentialSelfStabMis, SequentialScheduler};
/// use mis_core::Color;
/// use mis_graph::{generators, mis_check};
/// use rand::SeedableRng;
///
/// let g = generators::cycle(9);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut alg = SequentialSelfStabMis::new(&g, vec![Color::Black; 9]);
/// let out = alg.run(SequentialScheduler::SmallestId, &mut rng);
/// assert!(mis_check::is_mis(&g, &out.mis));
/// assert!(out.max_moves_per_vertex <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSelfStabMis<'g> {
    graph: &'g Graph,
    states: Vec<Color>,
    moves_per_vertex: Vec<usize>,
}

impl<'g> SequentialSelfStabMis<'g> {
    /// Creates the algorithm with the given (arbitrary) initial states.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn new(graph: &'g Graph, states: Vec<Color>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "initial state vector length must equal the number of vertices"
        );
        SequentialSelfStabMis {
            graph,
            states,
            moves_per_vertex: vec![0; graph.n()],
        }
    }

    /// Current color of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn color(&self, u: VertexId) -> Color {
        self.states[u]
    }

    /// `true` if vertex `u` is *privileged* (its guard is enabled): black
    /// with a black neighbor, or white with no black neighbor.
    pub fn is_privileged(&self, u: VertexId) -> bool {
        let has_black_neighbor = self
            .graph
            .neighbors(u)
            .iter()
            .any(|v| self.states[v].is_black());
        match self.states[u] {
            Color::Black => has_black_neighbor,
            Color::White => !has_black_neighbor,
        }
    }

    /// All currently privileged vertices.
    pub fn privileged_vertices(&self) -> Vec<VertexId> {
        self.graph
            .vertices()
            .filter(|&u| self.is_privileged(u))
            .collect()
    }

    /// Executes one move of vertex `u` (flips its state).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not privileged.
    pub fn execute_move(&mut self, u: VertexId) {
        assert!(self.is_privileged(u), "vertex {u} is not privileged");
        self.states[u] = match self.states[u] {
            Color::Black => Color::White,
            Color::White => Color::Black,
        };
        self.moves_per_vertex[u] += 1;
    }

    /// Runs the algorithm under the given scheduler until no vertex is
    /// privileged, and returns the outcome.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        scheduler: SequentialScheduler,
        rng: &mut R,
    ) -> SequentialOutcome {
        let mut moves = 0usize;
        loop {
            let privileged = self.privileged_vertices();
            if privileged.is_empty() {
                break;
            }
            let chosen = match scheduler {
                SequentialScheduler::SmallestId => privileged[0],
                SequentialScheduler::LargestId => *privileged.last().unwrap(),
                SequentialScheduler::Random => *privileged.choose(rng).unwrap(),
            };
            self.execute_move(chosen);
            moves += 1;
        }
        SequentialOutcome {
            mis: VertexSet::from_indices(
                self.graph.n(),
                self.graph.vertices().filter(|&u| self.states[u].is_black()),
            ),
            moves,
            max_moves_per_vertex: self.moves_per_vertex.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn stabilizes_within_two_moves_per_vertex() {
        let mut r = rng(0);
        for seed in 0..5u64 {
            let g = generators::gnp(60, 0.1, &mut ChaCha8Rng::seed_from_u64(seed));
            for scheduler in [
                SequentialScheduler::SmallestId,
                SequentialScheduler::LargestId,
                SequentialScheduler::Random,
            ] {
                let init: Vec<Color> =
                    mis_core::init::InitStrategy::Random.two_state(g.n(), &mut r);
                let mut alg = SequentialSelfStabMis::new(&g, init);
                let out = alg.run(scheduler, &mut r);
                assert!(mis_check::is_mis(&g, &out.mis), "{scheduler:?}");
                assert!(
                    out.max_moves_per_vertex <= 2,
                    "{scheduler:?}: a vertex moved {} times",
                    out.max_moves_per_vertex
                );
                assert!(out.moves <= 2 * g.n());
            }
        }
    }

    #[test]
    fn privileged_guards_match_definition() {
        let g = generators::path(3);
        let alg = SequentialSelfStabMis::new(&g, vec![Color::Black, Color::Black, Color::White]);
        // 0: black with black neighbor -> privileged; 1: same; 2: white with a
        // black neighbor -> not privileged.
        assert_eq!(alg.privileged_vertices(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "not privileged")]
    fn moving_an_unprivileged_vertex_panics() {
        let g = generators::path(2);
        let mut alg = SequentialSelfStabMis::new(&g, vec![Color::Black, Color::White]);
        alg.execute_move(1);
    }

    #[test]
    fn already_stable_configuration_needs_no_moves() {
        let g = generators::star(5);
        let mut states = vec![Color::White; 5];
        states[0] = Color::Black;
        let mut alg = SequentialSelfStabMis::new(&g, states);
        let out = alg.run(SequentialScheduler::SmallestId, &mut rng(1));
        assert_eq!(out.moves, 0);
        assert!(mis_check::is_mis(&g, &out.mis));
    }

    proptest! {
        #[test]
        fn stabilizes_from_arbitrary_states(seed in 0u64..2000, n in 1usize..60, p in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p, &mut r);
            let init: Vec<Color> = (0..n)
                .map(|_| if rand::Rng::gen_bool(&mut r, 0.5) { Color::Black } else { Color::White })
                .collect();
            let mut alg = SequentialSelfStabMis::new(&g, init);
            let out = alg.run(SequentialScheduler::Random, &mut r);
            prop_assert!(mis_check::is_mis(&g, &out.mis));
            prop_assert!(out.max_moves_per_vertex <= 2);
        }
    }
}
