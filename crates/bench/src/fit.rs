//! Growth-rate fitting: the experiments check the *shape* of the measured
//! stabilization times against the paper's asymptotic claims (logarithmic vs
//! poly-logarithmic vs linear in Δ), not absolute constants.

/// Result of an ordinary least-squares fit `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit; 0 when the variance of
    /// `y` is zero).
    pub r_squared: f64,
}

/// Ordinary least-squares fit of `y` on `x`.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two points.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x and y must have the same length");
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx).powi(2)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|v| (v - my).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (b - (slope * a + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `rounds ≈ c · (ln n)^e` by regressing `ln rounds` on `ln ln n` and
/// returns the exponent `e`.
///
/// An exponent near 1 means logarithmic stabilization time, near 2 means
/// `log²`, and so on; this is the statistic the experiment tables report next
/// to each theorem's claimed bound.
///
/// # Panics
///
/// Panics if fewer than two points are given or any value is non-positive.
pub fn polylog_exponent(ns: &[f64], rounds: &[f64]) -> f64 {
    assert!(ns.iter().all(|&n| n > 1.0), "sizes must exceed 1");
    assert!(
        rounds.iter().all(|&r| r > 0.0),
        "round counts must be positive"
    );
    let x: Vec<f64> = ns.iter().map(|n| n.ln().ln()).collect();
    let y: Vec<f64> = rounds.iter().map(|r| r.ln()).collect();
    linear_fit(&x, &y).slope
}

/// Fits `rounds ≈ c · n^e` by log-log regression and returns the exponent
/// `e`. Used to confirm that stabilization time is *not* polynomial in `n`
/// (the exponent should be close to 0 for polylog behaviour).
///
/// # Panics
///
/// Panics if fewer than two points are given or any value is non-positive.
pub fn power_exponent(ns: &[f64], rounds: &[f64]) -> f64 {
    assert!(ns.iter().all(|&n| n > 0.0), "sizes must be positive");
    assert!(
        rounds.iter().all(|&r| r > 0.0),
        "round counts must be positive"
    );
    let x: Vec<f64> = ns.iter().map(|n| n.ln()).collect();
    let y: Vec<f64> = rounds.iter().map(|r| r.ln()).collect();
    linear_fit(&x, &y).slope
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_data_has_zero_slope() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 0.0);
    }

    #[test]
    fn polylog_exponent_recovers_powers_of_log() {
        let ns: Vec<f64> = (6..16).map(|k| (1u64 << k) as f64).collect();
        // rounds = 3 (ln n)^2
        let rounds: Vec<f64> = ns.iter().map(|n| 3.0 * n.ln().powi(2)).collect();
        let e = polylog_exponent(&ns, &rounds);
        assert!((e - 2.0).abs() < 1e-9, "got exponent {e}");
        // rounds = 7 ln n
        let rounds: Vec<f64> = ns.iter().map(|n| 7.0 * n.ln()).collect();
        let e = polylog_exponent(&ns, &rounds);
        assert!((e - 1.0).abs() < 1e-9, "got exponent {e}");
    }

    #[test]
    fn power_exponent_recovers_linear_growth() {
        let ns: Vec<f64> = (1..10).map(|k| (k * 100) as f64).collect();
        let rounds: Vec<f64> = ns.iter().map(|n| 0.5 * n).collect();
        assert!((power_exponent(&ns, &rounds) - 1.0).abs() < 1e-9);
        // Logarithmic growth has a power exponent close to 0.
        let rounds: Vec<f64> = ns.iter().map(|n| 10.0 * n.ln()).collect();
        assert!(power_exponent(&ns, &rounds) < 0.5);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
