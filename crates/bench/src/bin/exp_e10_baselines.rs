//! E10 — comparison against Luby's algorithm and the random-priority
//! self-stabilizing baseline: rounds, states per vertex, and random bits.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e10_baselines [-- --quick]`

use mis_bench::experiments::comparison::{baselines_csv, e10_baselines};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = e10_baselines(scale);
    let csv = baselines_csv(&rows);
    print_section(
        "E10: paper processes vs baselines (shape: Luby wins on rounds, paper processes win on states/randomness and are self-stabilizing)",
        &csv,
    );
    if let Ok(path) = write_results_file("e10_baselines.csv", &csv) {
        println!("wrote {}", path.display());
    }
}
