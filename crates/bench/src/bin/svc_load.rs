//! Load generator for the graph-service daemon: hammer an in-process
//! `mis-service` instance with thousands of concurrent jobs across
//! algorithms and graph sizes (plus live `PATCH` traffic), and record
//! throughput + tail latency to `results/svc_load.json` and
//! `BENCH_service.json`.
//!
//! Usage: `cargo run --release -p mis-bench --bin svc_load [-- --quick]`
//!
//! Exit status is non-zero when a gate fails:
//! * any job dropped (non-terminal at the deadline) or failed;
//! * the daemon never reached the concurrency floor (full mode: >= 1000
//!   jobs resident in the store at once);
//! * the service metrics counters disagree with the client-side tallies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;
use mis_service::api::{JobInfo, JobStatus, MetricsReport};
use mis_service::{Service, ServiceConfig};
use serde::{Deserialize, Serialize};
use warp::Client;

const HELP: &str = "\
svc_load — graph-service daemon under thousands of concurrent jobs

USAGE: svc_load [--quick] [--help]

  --quick  ~160 jobs over 8 client threads (CI smoke); default is 2000
           jobs over 16 client threads with a >=1000-concurrency gate
  --help   print this help

METHOD
  Start an in-process daemon on a loopback port, register a catalog of six
  graphs (G(n,p), complete, random tree, cycle, star, disjoint cliques),
  then have N client threads submit jobs round-robin over the full
  algorithm x graph matrix as fast as the daemon accepts them, while a
  mutator thread PATCHes live topology deltas into the two G(n,p) graphs.
  Submission latency is measured per request; turnaround per job
  (submit -> observed terminal). A sampler polls /v1/metrics for the
  resident-job high-water mark.

GATES (non-zero exit)
  any non-terminal job at the deadline; any failed job; resident-job
  high-water mark below the floor (full mode: 1000); service-side
  submitted counter != client-side submissions.
";

/// Deadline for every job to reach a terminal state.
const DRAIN_DEADLINE: Duration = Duration::from_secs(600);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LatencySummary {
    p50_micros: u64,
    p95_micros: u64,
    p99_micros: u64,
    max_micros: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(mut micros: Vec<u64>) -> LatencySummary {
    micros.sort_unstable();
    LatencySummary {
        p50_micros: percentile(&micros, 0.50),
        p95_micros: percentile(&micros, 0.95),
        p99_micros: percentile(&micros, 0.99),
        max_micros: micros.last().copied().unwrap_or(0),
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServiceLoadReport {
    scale: String,
    client_threads: usize,
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_cancelled: u64,
    jobs_failed: u64,
    jobs_unfinished: u64,
    invalid_mis: u64,
    patches_applied: u64,
    max_resident_jobs: u64,
    concurrency_floor: u64,
    wall_seconds: f64,
    throughput_jobs_per_sec: f64,
    submit_latency: LatencySummary,
    turnaround: LatencySummary,
    http_requests_total: u64,
    service_submitted_counter: u64,
}

impl ServiceLoadReport {
    fn gates_pass(&self) -> bool {
        self.jobs_unfinished == 0
            && self.jobs_failed == 0
            && self.invalid_mis == 0
            && self.max_resident_jobs >= self.concurrency_floor
            && self.service_submitted_counter == self.jobs_submitted
    }

    fn to_pretty(&self) -> String {
        format!(
            "jobs: {} submitted over {} client threads ({} completed, {} cancelled, \
             {} failed, {} unfinished)\n\
             resident-job high-water mark: {} (floor {})\n\
             live patches applied: {}\n\
             wall: {:.2}s -> {:.1} jobs/s\n\
             submit latency  p50 {}us  p95 {}us  p99 {}us  max {}us\n\
             turnaround      p50 {}us  p95 {}us  p99 {}us  max {}us",
            self.jobs_submitted,
            self.client_threads,
            self.jobs_completed,
            self.jobs_cancelled,
            self.jobs_failed,
            self.jobs_unfinished,
            self.max_resident_jobs,
            self.concurrency_floor,
            self.patches_applied,
            self.wall_seconds,
            self.throughput_jobs_per_sec,
            self.submit_latency.p50_micros,
            self.submit_latency.p95_micros,
            self.submit_latency.p99_micros,
            self.submit_latency.max_micros,
            self.turnaround.p50_micros,
            self.turnaround.p95_micros,
            self.turnaround.p99_micros,
            self.turnaround.max_micros,
        )
    }
}

fn graph_catalog(client: &mut Client) -> Vec<u64> {
    let specs = [
        "{\"name\": \"gnp-small\", \"spec\": {\"Gnp\": {\"n\": 200, \"p\": 0.05}}, \"seed\": 1}",
        "{\"name\": \"gnp-large\", \"spec\": {\"Gnp\": {\"n\": 1000, \"p\": 0.01}}, \"seed\": 2}",
        "{\"name\": \"complete\", \"spec\": {\"Complete\": {\"n\": 64}}}",
        "{\"name\": \"tree\", \"spec\": {\"RandomTree\": {\"n\": 500}}, \"seed\": 3}",
        "{\"name\": \"cycle\", \"spec\": {\"Cycle\": {\"n\": 256}}}",
        "{\"name\": \"cliques\", \"spec\": {\"DisjointCliques\": {\"count\": 20, \"size\": 12}}}",
    ];
    specs
        .iter()
        .map(|body| {
            let resp = client
                .post_json("/v1/graphs", body.to_string())
                .expect("create graph");
            assert_eq!(resp.status, 201, "graph creation failed: {:?}", resp.text());
            let info: mis_service::api::GraphInfo =
                serde_json::from_str(resp.text().unwrap()).expect("graph info");
            info.id
        })
        .collect()
}

fn algorithm_keys(client: &mut Client) -> Vec<String> {
    let resp = client.get("/v1/algorithms").expect("list algorithms");
    let infos: Vec<mis_service::api::AlgorithmInfo> =
        serde_json::from_str(resp.text().unwrap()).expect("algorithm list");
    infos.into_iter().map(|a| a.key).collect()
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let scale = Scale::from_args();
    let (total_jobs, client_threads, concurrency_floor) = match scale {
        Scale::Quick => (160u64, 8usize, 50u64),
        Scale::Full => (2000, 16, 1000),
    };

    let service = Service::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        queue_capacity: total_jobs as usize + 1,
        ..ServiceConfig::default()
    })
    .expect("bind loopback");
    let addr = service.local_addr().to_string();
    println!("svc_load: daemon on {addr}, {total_jobs} jobs over {client_threads} clients");

    let mut setup = Client::new(addr.clone());
    let graphs = graph_catalog(&mut setup);
    let algorithms = algorithm_keys(&mut setup);
    assert!(algorithms.len() >= 10, "registry unexpectedly small");

    let started = Instant::now();
    let stop_sampler = Arc::new(AtomicBool::new(false));
    let max_resident = Arc::new(AtomicU64::new(0));
    let http_requests = Arc::new(AtomicU64::new(0));

    // Sampler: resident-job high-water mark via /v1/metrics.
    let sampler = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop_sampler);
        let max_resident = Arc::clone(&max_resident);
        thread::spawn(move || {
            let mut client = Client::new(addr);
            while !stop.load(Ordering::SeqCst) {
                if let Ok(resp) = client.get("/v1/metrics") {
                    if let Ok(report) =
                        serde_json::from_str::<MetricsReport>(resp.text().unwrap_or("{}"))
                    {
                        let resident = report.jobs.queued + report.jobs.running;
                        max_resident.fetch_max(resident, Ordering::Relaxed);
                    }
                }
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Mutator: live PATCH traffic against the two G(n,p) graphs while jobs
    // are in flight.
    let stop_mutator = Arc::new(AtomicBool::new(false));
    let patches_applied = Arc::new(AtomicU64::new(0));
    let mutator = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop_mutator);
        let patches = Arc::clone(&patches_applied);
        let targets = [graphs[0], graphs[1]];
        thread::spawn(move || {
            let mut client = Client::new(addr);
            let mut round = 0u64;
            while !stop.load(Ordering::SeqCst) {
                for (i, graph) in targets.iter().enumerate() {
                    let a = 2 * round as usize + i;
                    let body = format!(
                        "{{\"add\": [[{}, {}]], \"remove\": [[{}, {}]]}}",
                        a % 190,
                        (a + 7) % 190,
                        (a + 3) % 190,
                        (a + 11) % 190
                    );
                    if let Ok(resp) = client.patch_json(&format!("/v1/graphs/{graph}/edges"), body)
                    {
                        if resp.status == 200 {
                            patches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                round += 1;
                thread::sleep(Duration::from_millis(10));
            }
        })
    };

    // Client threads: submit the whole matrix as fast as it is accepted.
    let mut handles = Vec::new();
    for t in 0..client_threads {
        let addr = addr.clone();
        let graphs = graphs.clone();
        let algorithms = algorithms.clone();
        let http_requests = Arc::clone(&http_requests);
        let share = total_jobs as usize / client_threads
            + usize::from(t < total_jobs as usize % client_threads);
        handles.push(thread::spawn(move || {
            let mut client = Client::new(addr);
            let mut submit_latencies = Vec::with_capacity(share);
            let mut jobs: Vec<(u64, Instant)> = Vec::with_capacity(share);
            for k in 0..share {
                let idx = t + k * client_threads;
                let algorithm = &algorithms[idx % algorithms.len()];
                let graph = graphs[(idx / algorithms.len()) % graphs.len()];
                let body = format!(
                    "{{\"graph\": {graph}, \"algorithm\": \"{algorithm}\", \"seed\": {idx}}}"
                );
                let t0 = Instant::now();
                let resp = client.post_json("/v1/jobs", body).expect("submit job");
                submit_latencies.push(t0.elapsed().as_micros() as u64);
                http_requests.fetch_add(1, Ordering::Relaxed);
                assert_eq!(resp.status, 202, "submission rejected: {:?}", resp.text());
                let info: JobInfo = serde_json::from_str(resp.text().unwrap()).unwrap();
                jobs.push((info.id, t0));
            }
            // Poll until every job this thread owns is terminal.
            let deadline = Instant::now() + DRAIN_DEADLINE;
            let mut turnarounds = Vec::with_capacity(share);
            let mut outcomes = Vec::with_capacity(share);
            let mut pending: Vec<(u64, Instant)> = jobs;
            while !pending.is_empty() && Instant::now() < deadline {
                pending.retain(|(id, t0)| {
                    let resp = client.get(&format!("/v1/jobs/{id}")).expect("poll job");
                    http_requests.fetch_add(1, Ordering::Relaxed);
                    let info: JobInfo = serde_json::from_str(resp.text().unwrap()).unwrap();
                    if info.status.is_terminal() {
                        turnarounds.push(t0.elapsed().as_micros() as u64);
                        outcomes.push(info);
                        false
                    } else {
                        true
                    }
                });
                if !pending.is_empty() {
                    thread::sleep(Duration::from_millis(2));
                }
            }
            (
                submit_latencies,
                turnarounds,
                outcomes,
                pending.len() as u64,
            )
        }));
    }

    let mut submit_latencies = Vec::new();
    let mut turnarounds = Vec::new();
    let mut outcomes: Vec<JobInfo> = Vec::new();
    let mut unfinished = 0u64;
    for handle in handles {
        let (lat, turn, outs, left) = handle.join().expect("client thread");
        submit_latencies.extend(lat);
        turnarounds.extend(turn);
        outcomes.extend(outs);
        unfinished += left;
    }
    let wall = started.elapsed();
    stop_mutator.store(true, Ordering::SeqCst);
    mutator.join().expect("mutator thread");
    stop_sampler.store(true, Ordering::SeqCst);
    sampler.join().expect("sampler thread");

    // Final service-side tallies, then graceful shutdown.
    let final_metrics: MetricsReport = {
        let resp = setup.get("/v1/metrics").expect("final metrics");
        serde_json::from_str(resp.text().unwrap()).expect("metrics JSON")
    };
    service.shutdown();

    let completed = outcomes
        .iter()
        .filter(|o| o.status == JobStatus::Completed)
        .count() as u64;
    let cancelled = outcomes
        .iter()
        .filter(|o| o.status == JobStatus::Cancelled)
        .count() as u64;
    let failed = outcomes
        .iter()
        .filter(|o| o.status == JobStatus::Failed)
        .count() as u64;
    let invalid = outcomes
        .iter()
        .filter(|o| {
            o.status == JobStatus::Completed && o.outcome.as_ref().is_some_and(|r| !r.valid_mis)
        })
        .count() as u64;

    let report = ServiceLoadReport {
        scale: format!("{scale:?}"),
        client_threads,
        jobs_submitted: total_jobs,
        jobs_completed: completed,
        jobs_cancelled: cancelled,
        jobs_failed: failed,
        jobs_unfinished: unfinished,
        invalid_mis: invalid,
        patches_applied: patches_applied.load(Ordering::Relaxed),
        max_resident_jobs: max_resident.load(Ordering::Relaxed),
        concurrency_floor,
        wall_seconds: wall.as_secs_f64(),
        throughput_jobs_per_sec: completed as f64 / wall.as_secs_f64(),
        submit_latency: summarize(submit_latencies),
        turnaround: summarize(turnarounds),
        http_requests_total: http_requests.load(Ordering::Relaxed),
        service_submitted_counter: final_metrics.jobs.submitted,
    };

    print_section(
        "SERVICE LOAD: concurrent jobs over HTTP",
        &report.to_pretty(),
    );
    let json = serde_json::to_string_pretty(&report).expect("report JSON");
    if let Ok(path) = write_results_file("svc_load.json", &json) {
        println!("wrote {}", path.display());
    }
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => println!("wrote BENCH_service.json"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}"),
    }

    if !report.gates_pass() {
        if report.jobs_unfinished > 0 {
            eprintln!(
                "GATE FAILED: {} jobs still non-terminal at the deadline",
                report.jobs_unfinished
            );
        }
        if report.jobs_failed > 0 {
            eprintln!("GATE FAILED: {} jobs failed", report.jobs_failed);
        }
        if report.invalid_mis > 0 {
            eprintln!(
                "GATE FAILED: {} completed jobs reported an invalid MIS",
                report.invalid_mis
            );
        }
        if report.max_resident_jobs < report.concurrency_floor {
            eprintln!(
                "GATE FAILED: resident-job high-water mark {} below the floor {}",
                report.max_resident_jobs, report.concurrency_floor
            );
        }
        if report.service_submitted_counter != report.jobs_submitted {
            eprintln!(
                "GATE FAILED: service counted {} submissions, clients made {}",
                report.service_submitted_counter, report.jobs_submitted
            );
        }
        std::process::exit(1);
    }
}
