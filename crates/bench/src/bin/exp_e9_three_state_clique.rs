//! E9 — Remark 10: the 3-state process is a log-factor faster than the
//! 2-state process on cliques (`O(log n)` vs `Θ(log² n)`).
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e9_three_state_clique [-- --quick]`

use mis_bench::experiments::stabilization::e9_three_state_clique;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let (two, three) = e9_three_state_clique(scale);
    print_section(
        "E9: 2-state process on K_n (Θ(log² n))",
        &two.table.to_pretty(),
    );
    print_section(
        "E9: 3-state process on K_n (Remark 10: O(log n))",
        &three.table.to_pretty(),
    );
    println!(
        "2-state fitted (ln n)^e exponent: {:.2}   (paper: ~2)",
        two.polylog_exponent
    );
    println!(
        "3-state fitted (ln n)^e exponent: {:.2}   (paper: ~1)",
        three.polylog_exponent
    );
    if let Ok(path) = write_results_file("e9_two_state_clique.csv", &two.table.to_csv()) {
        println!("wrote {}", path.display());
    }
    if let Ok(path) = write_results_file("e9_three_state_clique.csv", &three.table.to_csv()) {
        println!("wrote {}", path.display());
    }
}
