//! Scale experiment: round throughput of the incremental frontier engine vs
//! the naive full-scan reference, early phase vs late phase, on sparse
//! `G(n, 8/n)`.
//!
//! Writes the machine-readable report to `results/exp_scale.json` and the
//! headline evidence file `BENCH_scale.json` at the workspace root.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_scale [-- --quick]`

use mis_bench::experiments::scale::exp_scale;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = exp_scale(scale);
    print_section(
        "SCALE: incremental frontier engine vs full-scan reference, 2-state on G(n, 8/n)",
        &report.to_pretty(),
    );
    println!(
        "late-phase speedup at n = {}: {:.1}x (fast {:.0} rounds/s vs reference {:.1} rounds/s)",
        report.rows.last().map_or(0, |r| r.n),
        report.headline_speedup(),
        report
            .rows
            .last()
            .map_or(0.0, |r| r.late.fast_rounds_per_sec),
        report
            .rows
            .last()
            .map_or(0.0, |r| r.late.reference_rounds_per_sec),
    );

    let json = report.to_json();
    if let Ok(path) = write_results_file("exp_scale.json", &json) {
        println!("wrote {}", path.display());
    }
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => println!("wrote BENCH_scale.json"),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }

    if report.headline_speedup() < 5.0 {
        eprintln!(
            "WARNING: late-phase speedup {:.1}x is below the expected 5x",
            report.headline_speedup()
        );
        std::process::exit(1);
    }
}
