//! Scale experiment: round throughput of the incremental frontier engine vs
//! the naive full-scan reference (early phase vs late phase), plus the
//! counter-based parallel engine's early-phase thread sweep, on sparse
//! `G(n, 8/n)`.
//!
//! Writes the machine-readable report to `results/exp_scale.json` and the
//! headline evidence file `BENCH_scale.json` at the workspace root.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_scale [-- --quick]
//! [--strategy auto|sparse|dense]`
//!
//! Exit status is non-zero when a gate fails:
//! * late-phase engine speedup over the reference below 5x;
//! * early-phase engine speedup below 1x at any `n` (unless the sparse
//!   worklist path is forced, which is expected to lose the dense phase);
//! * any thread-count determinism check failed;
//! * on hosts with ≥ 2 cores: best parallel early-phase throughput at
//!   `n = 10⁵` below the sequential engine's (accidental serialization).

use mis_bench::experiments::scale::exp_scale;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;
use mis_core::RoundStrategy;

const HELP: &str = "\
exp_scale — frontier-engine scale experiment on sparse G(n, 8/n)

USAGE: exp_scale [--quick] [--strategy auto|sparse|dense]
                 [--require-multicore] [--help]

  --quick       n = 10^5 only (CI smoke); default is n in {10^4, ..., 10^7}
  --strategy S  round strategy of the fast path (default: auto — the
                direction-optimizing dense/sparse switch; results are
                bit-identical across strategies, only throughput changes)
  --require-multicore
                hard-fail (instead of warn) when the host has < 2 cores —
                for CI configs that promise a multi-core runner, so the
                parallel-vs-sequential gate can never silently skip
  --help        print this help

PHASES AND RANDOMNESS MODELS
  early/late fast+reference  sequential execution: every coin comes from one
                             shared ChaCha8 stream drawn in ascending vertex
                             order (bit-identical to step_reference).
  early parallel sweep       ExecutionMode::Parallel: counter-based
                             randomness — each vertex's coin is the pure
                             function Philox(seed, vertex, round) — measured
                             at 1/2/4/8 worker threads from the same early
                             snapshot, plus an in-experiment check that all
                             thread counts produce bit-identical states.
  graph setup                counter-based parallel G(n,p): per-row geometric
                             skips keyed on (seed, row), identical for every
                             worker-thread count.

GATES (non-zero exit)
  late-phase speedup < 5x; early-phase speedup < 1x at any n (skipped when
  --strategy sparse is forced); determinism check failure; and, when the
  host has >= 2 cores, parallel early-phase throughput at n = 10^5 below
  sequential.
";

fn parse_strategy() -> RoundStrategy {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix("--strategy=") {
            return RoundStrategy::parse(value)
                .unwrap_or_else(|| panic!("unknown strategy '{value}'"));
        }
        if arg == "--strategy" {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--strategy needs a value (auto|sparse|dense)"));
            return RoundStrategy::parse(value)
                .unwrap_or_else(|| panic!("unknown strategy '{value}'"));
        }
    }
    RoundStrategy::Auto
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let scale = Scale::from_args();
    let strategy = parse_strategy();
    let require_multicore = std::env::args().any(|a| a == "--require-multicore");
    let report = exp_scale(scale, strategy);
    print_section(
        &format!(
            "SCALE: incremental frontier engine vs full-scan reference, 2-state on G(n, 8/n), strategy {}",
            report.strategy
        ),
        &report.to_pretty(),
    );
    println!(
        "host cores: {}; late-phase speedup at n = {}: {:.1}x (fast {:.0} rounds/s vs reference {:.1} rounds/s); best parallel early-phase speedup: {:.2}x",
        report.threads_available,
        report.rows.last().map_or(0, |r| r.n),
        report.headline_speedup(),
        report
            .rows
            .last()
            .map_or(0.0, |r| r.late.fast_rounds_per_sec),
        report
            .rows
            .last()
            .map_or(0.0, |r| r.late.reference_rounds_per_sec),
        report.headline_parallel_speedup(),
    );

    let json = report.to_json();
    if let Ok(path) = write_results_file("exp_scale.json", &json) {
        println!("wrote {}", path.display());
    }
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => println!("wrote BENCH_scale.json"),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }

    let mut failed = false;
    // A CI config that passes --require-multicore promises a multi-core
    // runner; landing on a 1-core host means the parallel gate below would
    // silently degrade to a warning, so fail loudly instead.
    if require_multicore && report.threads_available < 2 {
        eprintln!(
            "GATE FAILED: --require-multicore was passed but the host reports {} core(s) — \
             the parallel-vs-sequential gate cannot run",
            report.threads_available
        );
        failed = true;
    }
    // Late-phase gate: the worklist path must crush the reference in the
    // silent tail. Forcing --strategy dense re-creates the O(n + m) tail by
    // design, so the gate is skipped there (mirroring the early gate's
    // exemption for forced sparse).
    if strategy != RoundStrategy::Dense && report.headline_speedup() < 5.0 {
        eprintln!(
            "GATE FAILED: late-phase speedup {:.1}x is below the expected 5x",
            report.headline_speedup()
        );
        failed = true;
    }
    // Early-phase gate: with the adaptive (or forced dense) strategy the
    // engine must never lose to the naive reference, at any size. The old
    // sparse-only engine silently recorded 0.54-0.89x here; the dense path
    // exists precisely to erase that regression. Forcing --strategy sparse
    // re-creates it by design, so the gate is skipped there.
    if strategy != RoundStrategy::Sparse {
        for row in &report.rows {
            if row.early.speedup < 1.0 {
                eprintln!(
                    "GATE FAILED: early-phase speedup {:.2}x at n = {} is below 1x (strategy {})",
                    row.early.speedup, row.n, report.strategy
                );
                failed = true;
            }
        }
    }
    if !report.all_deterministic() {
        eprintln!("GATE FAILED: thread counts disagreed — the determinism contract is broken");
        failed = true;
    }
    // Anti-serialization gate: with real cores available, the parallel
    // engine's early phase at n = 10^5 must not be slower than the
    // sequential engine. On a single-core host this is unmeasurable (thread
    // overhead with no parallelism), so it degrades to a warning.
    if let Some(row) = report.row_at(100_000) {
        let best = row
            .early_parallel
            .iter()
            .map(|p| p.rounds_per_sec)
            .fold(0.0, f64::max);
        if best < row.early.fast_rounds_per_sec {
            let msg = format!(
                "parallel early phase at n = 10^5 ({best:.0} rounds/s) is below sequential ({:.0} rounds/s)",
                row.early.fast_rounds_per_sec
            );
            if report.threads_available >= 2 {
                eprintln!("GATE FAILED: {msg}");
                failed = true;
            } else {
                eprintln!("WARNING (single-core host, gate skipped): {msg}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
