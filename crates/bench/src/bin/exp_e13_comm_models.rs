//! E13 — realizability in the beeping / stone age models: the message-passing
//! adaptations are trace-equivalent to the direct processes.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e13_comm_models [-- --quick]`

use mis_bench::experiments::lemmas::{comm_csv, e13_comm_models, e13_registry_harness};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = e13_comm_models(scale);
    let csv = comm_csv(&rows);
    print_section(
        "E13: co-simulation of the beeping / stone-age adaptations against the direct processes (traces must be identical)",
        &csv,
    );
    if let Ok(path) = write_results_file("e13_comm_models.csv", &csv) {
        println!("wrote {}", path.display());
    }

    // The same adaptations as first-class registry algorithms, driven
    // end-to-end by the shared scheduler/observer harness.
    let table = e13_registry_harness(scale);
    print_section(
        "E13b: communication models through the algorithm registry (run_experiment)",
        &table.to_pretty(),
    );
    if let Ok(path) = write_results_file("e13_registry_harness.csv", &table.to_csv()) {
        println!("wrote {}", path.display());
    }
}
