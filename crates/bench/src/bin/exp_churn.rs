//! Churn experiment: incremental re-stabilization of the live-mutation
//! engine vs a cold restart after Poisson edge-churn bursts, for the
//! 2-state, 3-state, and 3-color processes on sparse `G(n, 8/n)`.
//!
//! Writes the machine-readable report to `results/exp_churn.json` and the
//! headline evidence file `BENCH_churn.json` at the workspace root.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_churn [-- --quick]`
//!
//! Exit status is non-zero when a gate fails:
//! * at the gate fraction (1% edge churn), any process whose incremental
//!   re-stabilization takes at least as many rounds as a cold restart on
//!   the mutated graph;
//! * any incremental run that does not end on a valid MIS of its mutated
//!   graph.

use mis_bench::experiments::churn::exp_churn;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

const HELP: &str = "\
exp_churn — live-mutation engine: incremental re-stabilization vs cold restart

USAGE: exp_churn [--quick] [--help]

  --quick  n = 10^5 at the 1% gate fraction only (CI smoke); default is
           n = 10^6 across a churn-fraction sweep
  --help   print this help

METHOD
  For each paper process (two-state, three-state, three-color) and each
  churn fraction f: stabilize on G(n, 8/n), apply one Poisson edge-churn
  burst (expected f*m removals + f*m insertions) through apply_mutation,
  count the rounds to re-stabilize incrementally, then build a fresh
  process on the mutated graph and count its rounds from scratch.

GATES (non-zero exit)
  incremental_rounds >= restart_rounds for any process at f = 1%; any
  incremental run ending on an invalid MIS.
";

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let scale = Scale::from_args();
    let report = exp_churn(scale);
    print_section(
        "CHURN: incremental re-stabilization vs cold restart on G(n, 8/n)",
        &report.to_pretty(),
    );
    let gate: Vec<String> = report
        .gate_rows()
        .map(|r| {
            format!(
                "{}: {} vs {} rounds ({:.1}x)",
                r.algorithm, r.incremental_rounds, r.restart_rounds, r.round_speedup
            )
        })
        .collect();
    println!(
        "incremental vs restart at f = {}: {}",
        report.gate_fraction,
        gate.join("; ")
    );

    let json = report.to_json();
    if let Ok(path) = write_results_file("exp_churn.json", &json) {
        println!("wrote {}", path.display());
    }
    match std::fs::write("BENCH_churn.json", &json) {
        Ok(()) => println!("wrote BENCH_churn.json"),
        Err(e) => eprintln!("could not write BENCH_churn.json: {e}"),
    }

    let mut failed = false;
    if !report.gate_passes() {
        eprintln!(
            "GATE FAILED: incremental re-stabilization after a {}% edge-churn burst \
             took no fewer rounds than a cold restart",
            report.gate_fraction * 100.0
        );
        failed = true;
    }
    if !report.all_valid() {
        eprintln!("GATE FAILED: an incremental run ended on an invalid MIS");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
