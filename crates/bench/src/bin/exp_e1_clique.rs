//! E1 — Theorem 8: stabilization time of the 2-state process on `K_n`.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e1_clique [-- --quick]`

use mis_bench::experiments::stabilization::{e1_clique, e1_clique_tail};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = e1_clique(scale);
    print_section(
        "E1: 2-state process on K_n (Theorem 8: O(log n) expected, Θ(log² n) w.h.p.)",
        &report.table.to_pretty(),
    );
    println!(
        "fitted (ln n)^e exponent: {:.2}   (paper: between 1 and 2)",
        report.polylog_exponent
    );
    println!(
        "fitted n^e exponent:      {:.2}   (paper: ~0, i.e. not polynomial)",
        report.power_exponent
    );
    if let Ok(path) = write_results_file("e1_clique.csv", &report.table.to_csv()) {
        println!("wrote {}", path.display());
    }

    let tail = e1_clique_tail(scale);
    let mut body = String::from("k   P[T >= k*log2(n)]\n");
    for (k, frac) in &tail {
        body.push_str(&format!("{k}   {frac:.4}\n"));
    }
    print_section(
        "E1 (tail): P[T >= k log n] should decay geometrically in k",
        &body,
    );
}
