//! Chaos harness for the crash-safe graph service: repeated kill-and-restart
//! cycles under concurrent submit/PATCH traffic routed through a
//! fault-injecting TCP proxy, plus slowloris and malformed-frame attacks
//! straight at the listener. Evidence lands in `results/svc_chaos.json` and
//! `BENCH_recovery.json`.
//!
//! Usage: `cargo run --release -p mis-bench --bin svc_chaos [-- --quick]`
//!
//! Exit status is non-zero when a gate fails:
//! * any acknowledged (202) job is missing after a restart;
//! * any completed job reports an invalid MIS;
//! * any interrupted job fails to complete validly when retried;
//! * graph registry versions after replay differ from the pre-crash truth;
//! * any job hangs (non-terminal at the verification deadline);
//! * a malformed frame or slow client takes the server down or gets a 2xx.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;
use mis_service::api::{GraphInfo, JobInfo, JobStatus};
use mis_service::{Service, ServiceConfig};
use serde::{Deserialize, Serialize};
use warp::{Client, RetryPolicy};

const HELP: &str = "\
svc_chaos — kill-and-restart cycles against the crash-safe daemon

USAGE: svc_chaos [--quick] [--help]

  --quick  4 crash cycles over 4 client threads (CI smoke); default is
           20 cycles over 8 client threads
  --help   print this help

METHOD
  Start an in-process daemon with a durable --data-dir, put a
  fault-injecting TCP proxy in front of it (connection drops, truncated
  forwards), and drive job submissions + live PATCH traffic through the
  proxy from N client threads using the retrying HTTP client. Each cycle:
  let traffic run, pause the mutator, snapshot the graph registry straight
  from the service, crash it mid-traffic (sealed journal, aborted
  listener, abandoned workers), restart on the same data directory, and
  compare the replayed registry against the pre-crash snapshot exactly.
  Alongside the cycles a slowloris client trickles a request one byte at
  a time and raw sockets fire malformed/oversized frames at the listener.
  Afterwards every 202-acknowledged job id is resolved against the final
  incarnation: Completed jobs must carry a valid MIS; Interrupted jobs are
  re-run via POST /v1/jobs/:id/retry and must then complete validly.

GATES (non-zero exit)
  lost acked jobs; invalid MIS; failed retries; registry version drift
  after replay; hangs at the verification deadline; unclassified
  malformed-frame responses; a slowloris connection answered 2xx.
";

/// Deadline for the post-chaos verification sweep (per-id polls share it).
const VERIFY_DEADLINE: Duration = Duration::from_secs(240);
/// Settle time after pausing the mutator before the authoritative snapshot.
const SETTLE: Duration = Duration::from_millis(200);

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChaosReport {
    scale: String,
    crash_cycles: u64,
    restarts: u64,
    client_threads: usize,
    acked_jobs: u64,
    lost_acked: u64,
    invalid_mis: u64,
    completed: u64,
    interrupted_seen: u64,
    retries_issued: u64,
    retry_failures: u64,
    unexpected_terminal: u64,
    hangs: u64,
    version_mismatches: u64,
    submissions_shed: u64,
    submit_io_errors: u64,
    patches_acked: u64,
    proxy_connections: u64,
    proxy_dropped: u64,
    proxy_truncated: u64,
    malformed_probes: u64,
    malformed_unclassified: u64,
    slowloris_ok: bool,
    torn_tails_recovered: u64,
    wall_seconds: f64,
}

impl ChaosReport {
    fn gates_pass(&self) -> bool {
        self.lost_acked == 0
            && self.invalid_mis == 0
            && self.retry_failures == 0
            && self.unexpected_terminal == 0
            && self.hangs == 0
            && self.version_mismatches == 0
            && self.malformed_unclassified == 0
            && self.slowloris_ok
            && self.acked_jobs > 0
            && self.restarts == self.crash_cycles
    }

    fn to_pretty(&self) -> String {
        format!(
            "crash cycles: {} ({} restarts, {} torn tails truncated)\n\
             acked jobs: {} ({} completed, {} interrupted -> {} retried, \
             {} lost, {} invalid MIS, {} hangs)\n\
             registry: {} version mismatches after replay\n\
             admission: {} submissions shed (429/503 after retries), {} IO errors\n\
             proxy: {} connections ({} dropped, {} truncated)\n\
             attacks: {} malformed frames ({} unclassified), slowloris ok: {}\n\
             wall: {:.2}s",
            self.crash_cycles,
            self.restarts,
            self.torn_tails_recovered,
            self.acked_jobs,
            self.completed,
            self.interrupted_seen,
            self.retries_issued,
            self.lost_acked,
            self.invalid_mis,
            self.hangs,
            self.version_mismatches,
            self.submissions_shed,
            self.submit_io_errors,
            self.proxy_connections,
            self.proxy_dropped,
            self.proxy_truncated,
            self.malformed_probes,
            self.malformed_unclassified,
            self.slowloris_ok,
            self.wall_seconds,
        )
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting proxy
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ProxyStats {
    connections: AtomicU64,
    dropped: AtomicU64,
    truncated: AtomicU64,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One-directional byte pump with an optional forward limit (truncation
/// fault). Read timeouts keep the thread responsive to the stop flag.
fn pump(mut from: TcpStream, mut to: TcpStream, stop: Arc<AtomicBool>, limit: Option<usize>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 8192];
    let mut sent = 0usize;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let take = limit.map_or(n, |l| n.min(l.saturating_sub(sent)));
                if take > 0 && to.write_all(&buf[..take]).is_err() {
                    break;
                }
                sent += take;
                if limit.is_some_and(|l| sent >= l) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Accepts on a stable frontend address and forwards to whatever backend
/// address is current (the service moves ports across restarts). Roughly 8%
/// of connections are dropped on arrival and another 8% forward only the
/// first 48 bytes of the request before closing — the retrying client is
/// expected to absorb both.
fn start_proxy(
    backend: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
) -> (SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let front = listener.local_addr().expect("proxy addr");
    let handle = thread::spawn(move || {
        let mut counter = 0u64;
        for conn in listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(client_conn) = conn else { continue };
            counter += 1;
            stats.connections.fetch_add(1, Ordering::Relaxed);
            let roll = splitmix64(counter ^ 0x5EED) % 100;
            if roll < 8 {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                let _ = client_conn.shutdown(Shutdown::Both);
                continue;
            }
            let target = backend.lock().unwrap_or_else(|e| e.into_inner()).clone();
            let Ok(server_conn) = TcpStream::connect(&target) else {
                // Backend down (mid-crash): the client sees a reset and
                // retries with backoff.
                let _ = client_conn.shutdown(Shutdown::Both);
                continue;
            };
            let limit = if roll < 16 {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
                Some(48)
            } else {
                None
            };
            let (c2, s2) = (
                client_conn.try_clone().expect("clone client conn"),
                server_conn.try_clone().expect("clone server conn"),
            );
            let stop_a = Arc::clone(&stop);
            let stop_b = Arc::clone(&stop);
            thread::spawn(move || pump(client_conn, server_conn, stop_a, limit));
            thread::spawn(move || pump(s2, c2, stop_b, None));
        }
    });
    (front, handle)
}

// ---------------------------------------------------------------------------
// Attacks straight at the listener
// ---------------------------------------------------------------------------

/// Fires one garbage frame and one oversized-header frame at the service and
/// classifies the responses. Returns (probes, unclassified). A response is
/// classified when it is the mapped 4xx or the server just closes the
/// connection; anything 2xx (or a dead listener afterwards) is not.
fn malformed_probes(addr: &str) -> (u64, u64) {
    let mut unclassified = 0u64;

    let garbage: &[u8] = b"\x16\x03\x01 NOT HTTP AT ALL\r\n\r\n\x00\xff";
    if !probe_expect(addr, garbage, &["400"]) {
        unclassified += 1;
    }

    let mut oversized = Vec::with_capacity(80 * 1024);
    oversized.extend_from_slice(b"GET /v1/metrics HTTP/1.1\r\nx-pad: ");
    oversized.resize(80 * 1024, b'a');
    oversized.extend_from_slice(b"\r\n\r\n");
    if !probe_expect(addr, &oversized, &["413"]) {
        unclassified += 1;
    }

    // The listener must still answer real requests afterwards.
    let mut client = Client::new(addr.to_string());
    match client.get("/v1/metrics") {
        Ok(resp) if resp.status == 200 => {}
        _ => unclassified += 1,
    }
    (3, unclassified)
}

fn probe_expect(addr: &str, payload: &[u8], statuses: &[&str]) -> bool {
    let Ok(mut conn) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    if conn.write_all(payload).is_err() {
        // Server slammed the door mid-write: classified.
        return true;
    }
    let _ = conn.shutdown(Shutdown::Write);
    let mut buf = Vec::new();
    match conn.read_to_end(&mut buf) {
        Ok(0) => true, // closed without a response: classified
        Ok(_) => {
            let head = String::from_utf8_lossy(&buf);
            let status = head
                .strip_prefix("HTTP/1.1 ")
                .and_then(|r| r.get(..3))
                .unwrap_or("");
            statuses.contains(&status)
        }
        Err(_) => true, // reset: classified
    }
}

/// Trickles a request one fragment at a time. The server must either evict
/// the connection at its request deadline (408 or close) or the connection
/// dies with a crash cycle — it must never be answered 2xx and never
/// outlive the deadline by much.
fn slowloris(addr: String, verdict: Arc<Mutex<Option<bool>>>) {
    let ok = slowloris_inner(&addr);
    *verdict.lock().unwrap_or_else(|e| e.into_inner()) = Some(ok);
}

fn slowloris_inner(addr: &str) -> bool {
    let Ok(mut conn) = TcpStream::connect(addr) else {
        return false;
    };
    let started = Instant::now();
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    if conn.write_all(b"GET /v1/metrics HTTP/1.1\r\n").is_err() {
        return true; // closed before we even got going
    }
    let mut buf = [0u8; 1024];
    loop {
        if started.elapsed() > Duration::from_secs(25) {
            return false; // the server never evicted us: hang
        }
        // Drip one header byte, then look for a response / closure.
        if conn.write_all(b"x").is_err() {
            return true;
        }
        match conn.read(&mut buf) {
            Ok(0) => return true,
            Ok(n) => {
                let head = String::from_utf8_lossy(&buf[..n]);
                return !head.starts_with("HTTP/1.1 2");
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return true,
        }
    }
}

// ---------------------------------------------------------------------------
// Traffic + snapshots
// ---------------------------------------------------------------------------

fn retrying_client(addr: &str) -> Client {
    Client::with_retry(
        addr.to_string(),
        RetryPolicy {
            budget: 7,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(800),
            retry_on_status: true,
        },
    )
}

fn graph_catalog(client: &mut Client) -> Vec<u64> {
    let specs = [
        "{\"name\": \"gnp\", \"spec\": {\"Gnp\": {\"n\": 96, \"p\": 0.08}}, \"seed\": 11}",
        "{\"name\": \"cycle\", \"spec\": {\"Cycle\": {\"n\": 64}}}",
        "{\"name\": \"cliques\", \"spec\": {\"DisjointCliques\": {\"count\": 8, \"size\": 6}}}",
    ];
    specs
        .iter()
        .map(|body| {
            let resp = client
                .post_json("/v1/graphs", body.to_string())
                .expect("create graph");
            assert_eq!(resp.status, 201, "graph creation failed: {:?}", resp.text());
            let info: GraphInfo = serde_json::from_str(resp.text().unwrap()).expect("graph info");
            info.id
        })
        .collect()
}

fn algorithm_keys(client: &mut Client) -> Vec<String> {
    let resp = client.get("/v1/algorithms").expect("list algorithms");
    let infos: Vec<mis_service::api::AlgorithmInfo> =
        serde_json::from_str(resp.text().unwrap()).expect("algorithm list");
    infos.into_iter().map(|a| a.key).collect()
}

/// Authoritative registry state: (id, name, n, m, version), sorted by id.
fn registry_snapshot(client: &mut Client) -> Vec<(u64, String, usize, usize, u64)> {
    let resp = client.get("/v1/graphs").expect("list graphs");
    let mut infos: Vec<GraphInfo> = serde_json::from_str(resp.text().unwrap()).expect("graph list");
    infos.sort_by_key(|g| g.id);
    infos
        .into_iter()
        .map(|g| (g.id, g.name, g.n, g.m, g.version))
        .collect()
}

// ---------------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------------

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let scale = Scale::from_args();
    // `submit_pace` throttles each submitter thread. The full run survives
    // 20 restarts, and every surviving job is replayed on each of them: an
    // unthrottled firehose makes the store (and with it every replay,
    // snapshot, and the final verification sweep) grow quadratically in
    // wall time without strengthening any gate.
    let (cycles, client_threads, cycle_len, submit_pace) = match scale {
        Scale::Quick => (
            4u64,
            4usize,
            Duration::from_millis(400),
            Duration::from_millis(3),
        ),
        Scale::Full => (20, 8, Duration::from_millis(900), Duration::from_millis(25)),
    };

    let data_dir = std::env::temp_dir().join(format!("svc-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("create data dir");
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        data_dir: Some(data_dir.clone()),
        queue_capacity: 512,
    };

    let mut service = Service::start(&config).expect("bind loopback");
    let direct_addr = Arc::new(Mutex::new(service.local_addr().to_string()));
    println!(
        "svc_chaos: daemon on {} (data dir {}), {} crash cycles over {} clients",
        service.local_addr(),
        data_dir.display(),
        cycles,
        client_threads
    );

    let stop = Arc::new(AtomicBool::new(false));
    let proxy_stats = Arc::new(ProxyStats::default());
    let (proxy_addr, proxy_handle) = start_proxy(
        Arc::clone(&direct_addr),
        Arc::clone(&stop),
        Arc::clone(&proxy_stats),
    );
    let proxy_addr = proxy_addr.to_string();

    let mut setup = Client::new(service.local_addr().to_string());
    let graphs = graph_catalog(&mut setup);
    let algorithms = algorithm_keys(&mut setup);
    assert!(!algorithms.is_empty(), "empty algorithm registry");

    let started = Instant::now();

    // Slowloris probe runs once, concurrently with the first cycles.
    let slow_verdict: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
    let slow_handle = {
        let addr = service.local_addr().to_string();
        let verdict = Arc::clone(&slow_verdict);
        thread::spawn(move || slowloris(addr, verdict))
    };

    // Ledger of job ids whose 202 the client actually observed; only those
    // acknowledgements are durability promises.
    let ledger: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let shed = Arc::new(AtomicU64::new(0));
    let io_errors = Arc::new(AtomicU64::new(0));

    let mut submitters = Vec::new();
    for t in 0..client_threads {
        let proxy = proxy_addr.clone();
        let graphs = graphs.clone();
        let algorithms = algorithms.clone();
        let ledger = Arc::clone(&ledger);
        let shed = Arc::clone(&shed);
        let io_errors = Arc::clone(&io_errors);
        let stop = Arc::clone(&stop);
        submitters.push(thread::spawn(move || {
            let mut client = retrying_client(&proxy);
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let idx = t + k * 17;
                let algorithm = &algorithms[idx % algorithms.len()];
                let graph = graphs[idx % graphs.len()];
                let body = format!(
                    "{{\"graph\": {graph}, \"algorithm\": \"{algorithm}\", \"seed\": {idx}}}"
                );
                match client.post_json("/v1/jobs", body) {
                    Ok(resp) if resp.status == 202 => {
                        if let Ok(info) = serde_json::from_str::<JobInfo>(resp.text().unwrap_or(""))
                        {
                            ledger
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(info.id);
                        }
                    }
                    Ok(resp) if resp.status == 429 || resp.status == 503 => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Interleave read traffic over the faulty path.
                if k % 5 == 4 {
                    let sample = {
                        let l = ledger.lock().unwrap_or_else(|e| e.into_inner());
                        l.get(idx % l.len().max(1)).copied()
                    };
                    if let Some(id) = sample {
                        let _ = client.get(&format!("/v1/jobs/{id}"));
                    }
                }
                k += 1;
                thread::sleep(submit_pace);
            }
        }));
    }

    // Mutator: live PATCH traffic through the proxy, pausable around the
    // authoritative pre-crash snapshot.
    let pause_mutator = Arc::new(AtomicBool::new(false));
    let patches_acked = Arc::new(AtomicU64::new(0));
    let mutator = {
        let proxy = proxy_addr.clone();
        let stop = Arc::clone(&stop);
        let pause = Arc::clone(&pause_mutator);
        let patches = Arc::clone(&patches_acked);
        let target = graphs[0];
        thread::spawn(move || {
            let mut client = retrying_client(&proxy);
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if pause.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
                let a = round as usize;
                let body = format!(
                    "{{\"add\": [[{}, {}]], \"remove\": [[{}, {}]]}}",
                    a % 90,
                    (a + 7) % 90,
                    (a + 3) % 90,
                    (a + 11) % 90
                );
                if let Ok(resp) = client.patch_json(&format!("/v1/graphs/{target}/edges"), body) {
                    if resp.status == 200 {
                        patches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                round += 1;
                thread::sleep(Duration::from_millis(8));
            }
        })
    };

    // ------------------------------------------------------------------
    // Crash cycles
    // ------------------------------------------------------------------
    let mut restarts = 0u64;
    let mut version_mismatches = 0u64;
    let mut torn_tails = 0u64;
    let mut malformed_total = 0u64;
    let mut malformed_unclassified = 0u64;

    for cycle in 1..=cycles {
        pause_mutator.store(false, Ordering::SeqCst);
        thread::sleep(cycle_len);
        pause_mutator.store(true, Ordering::SeqCst);
        thread::sleep(SETTLE);

        let cycle_t0 = Instant::now();
        let addr_now = direct_addr
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let (probes, bad) = malformed_probes(&addr_now);
        malformed_total += probes;
        malformed_unclassified += bad;

        let mut truth = Client::new(addr_now);
        let pre = registry_snapshot(&mut truth);

        // Crash: seal the journal, abandon the workers, abort the listener.
        service.crash();
        let crash_secs = cycle_t0.elapsed().as_secs_f64();

        let restart_t0 = Instant::now();
        let reborn = Service::start(&config).expect("restart after crash");
        let restart_secs = restart_t0.elapsed().as_secs_f64();
        restarts += 1;
        let recovery = reborn.state().recovery.clone();
        torn_tails += u64::from(recovery.torn_tail);
        let new_addr = reborn.local_addr().to_string();
        *direct_addr.lock().unwrap_or_else(|e| e.into_inner()) = new_addr.clone();

        let mut truth = Client::new(new_addr);
        let post = registry_snapshot(&mut truth);
        if pre != post {
            version_mismatches += 1;
            eprintln!(
                "cycle {cycle}: registry drift after replay\n  pre:  {pre:?}\n  post: {post:?}"
            );
        }
        println!(
            "cycle {cycle}/{cycles}: recovered {} graphs, {} jobs ({} requeued, {} interrupted){} \
             [probe+crash {crash_secs:.2}s, replay {restart_secs:.2}s, compare {:.2}s]",
            recovery.graphs,
            recovery.jobs,
            recovery.requeued,
            recovery.interrupted,
            if recovery.torn_tail {
                ", torn tail truncated"
            } else {
                ""
            },
            cycle_t0.elapsed().as_secs_f64() - crash_secs - restart_secs,
        );
        service = reborn;
    }

    // ------------------------------------------------------------------
    // Stop traffic, verify every acknowledgement against the survivor
    // ------------------------------------------------------------------
    stop.store(true, Ordering::SeqCst);
    for h in submitters {
        h.join().expect("submitter thread");
    }
    mutator.join().expect("mutator thread");
    // Unblock the proxy accept loop.
    let _ = TcpStream::connect(&proxy_addr);
    proxy_handle.join().expect("proxy thread");
    slow_handle.join().expect("slowloris thread");
    let slowloris_ok = slow_verdict
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .unwrap_or(false);

    let final_addr = direct_addr
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut verifier = Client::new(final_addr);
    let mut acked: Vec<u64> = {
        let l = ledger.lock().unwrap_or_else(|e| e.into_inner());
        l.clone()
    };
    acked.sort_unstable();
    acked.dedup();

    let deadline = Instant::now() + VERIFY_DEADLINE;
    let mut lost = 0u64;
    let mut completed = 0u64;
    let mut invalid = 0u64;
    let mut interrupted_seen = 0u64;
    let mut retries = 0u64;
    let mut retry_failures = 0u64;
    let mut unexpected_terminal = 0u64;
    let mut hangs = 0u64;

    for &id in &acked {
        match wait_terminal(&mut verifier, id, deadline) {
            Poll::Missing => lost += 1,
            Poll::Hung => hangs += 1,
            Poll::Terminal(info) => match info.status {
                JobStatus::Completed => {
                    completed += 1;
                    if !info.outcome.as_ref().is_some_and(|o| o.valid_mis) {
                        invalid += 1;
                        eprintln!("job {id}: completed with an invalid MIS: {info:?}");
                    }
                }
                JobStatus::Interrupted => {
                    interrupted_seen += 1;
                    retries += 1;
                    match retry_and_wait(&mut verifier, id, deadline) {
                        RetryResult::CompletedValid => {}
                        RetryResult::Hung => {
                            hangs += 1;
                            retry_failures += 1;
                        }
                        RetryResult::Failed(why) => {
                            retry_failures += 1;
                            eprintln!("job {id}: retry failed: {why}");
                        }
                    }
                }
                other => {
                    unexpected_terminal += 1;
                    eprintln!(
                        "job {id}: unexpected terminal state {other:?} (error: {:?})",
                        info.error
                    );
                }
            },
        }
    }

    // Unacked duplicates (a retried submit whose first attempt landed) must
    // also drain — nothing may hang in the store.
    if !drain_store(&mut verifier, deadline) {
        hangs += 1;
        eprintln!("store did not drain: jobs still queued/running at the deadline");
    }

    let wall = started.elapsed();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);

    let report = ChaosReport {
        scale: format!("{scale:?}"),
        crash_cycles: cycles,
        restarts,
        client_threads,
        acked_jobs: acked.len() as u64,
        lost_acked: lost,
        invalid_mis: invalid,
        completed,
        interrupted_seen,
        retries_issued: retries,
        retry_failures,
        unexpected_terminal,
        hangs,
        version_mismatches,
        submissions_shed: shed.load(Ordering::Relaxed),
        submit_io_errors: io_errors.load(Ordering::Relaxed),
        patches_acked: patches_acked.load(Ordering::Relaxed),
        proxy_connections: proxy_stats.connections.load(Ordering::Relaxed),
        proxy_dropped: proxy_stats.dropped.load(Ordering::Relaxed),
        proxy_truncated: proxy_stats.truncated.load(Ordering::Relaxed),
        malformed_probes: malformed_total,
        malformed_unclassified,
        slowloris_ok,
        torn_tails_recovered: torn_tails,
        wall_seconds: wall.as_secs_f64(),
    };

    print_section(
        "SERVICE CHAOS: crash/recover under fire",
        &report.to_pretty(),
    );
    let json = serde_json::to_string_pretty(&report).expect("report JSON");
    if let Ok(path) = write_results_file("svc_chaos.json", &json) {
        println!("wrote {}", path.display());
    }
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("wrote BENCH_recovery.json"),
        Err(e) => eprintln!("could not write BENCH_recovery.json: {e}"),
    }

    if !report.gates_pass() {
        if report.lost_acked > 0 {
            eprintln!(
                "GATE FAILED: {} acked jobs lost across restarts",
                report.lost_acked
            );
        }
        if report.invalid_mis > 0 {
            eprintln!(
                "GATE FAILED: {} completed jobs with an invalid MIS",
                report.invalid_mis
            );
        }
        if report.retry_failures > 0 {
            eprintln!(
                "GATE FAILED: {} interrupted jobs failed to retry",
                report.retry_failures
            );
        }
        if report.unexpected_terminal > 0 {
            eprintln!(
                "GATE FAILED: {} jobs in an unexpected terminal state",
                report.unexpected_terminal
            );
        }
        if report.hangs > 0 {
            eprintln!(
                "GATE FAILED: {} hangs at the verification deadline",
                report.hangs
            );
        }
        if report.version_mismatches > 0 {
            eprintln!(
                "GATE FAILED: registry drifted after replay in {} cycles",
                report.version_mismatches
            );
        }
        if report.malformed_unclassified > 0 {
            eprintln!(
                "GATE FAILED: {} malformed-frame probes not cleanly rejected",
                report.malformed_unclassified
            );
        }
        if !report.slowloris_ok {
            eprintln!("GATE FAILED: slowloris connection answered 2xx or never evicted");
        }
        if report.acked_jobs == 0 {
            eprintln!("GATE FAILED: no job acknowledgements observed — harness defect");
        }
        if report.restarts != report.crash_cycles {
            eprintln!(
                "GATE FAILED: {} restarts for {} crashes",
                report.restarts, report.crash_cycles
            );
        }
        std::process::exit(1);
    }
}

enum Poll {
    Missing,
    Hung,
    Terminal(JobInfo),
}

fn wait_terminal(client: &mut Client, id: u64, deadline: Instant) -> Poll {
    loop {
        let Ok(resp) = client.get(&format!("/v1/jobs/{id}")) else {
            if Instant::now() > deadline {
                return Poll::Hung;
            }
            thread::sleep(Duration::from_millis(20));
            continue;
        };
        if resp.status == 404 {
            return Poll::Missing;
        }
        if let Ok(info) = serde_json::from_str::<JobInfo>(resp.text().unwrap_or("")) {
            if info.status.is_terminal() {
                return Poll::Terminal(info);
            }
        }
        if Instant::now() > deadline {
            return Poll::Hung;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

enum RetryResult {
    CompletedValid,
    Hung,
    Failed(String),
}

fn retry_and_wait(client: &mut Client, id: u64, deadline: Instant) -> RetryResult {
    let resp = match client.post_json(&format!("/v1/jobs/{id}/retry"), String::new()) {
        Ok(resp) => resp,
        Err(e) => return RetryResult::Failed(format!("retry request failed: {e}")),
    };
    if resp.status != 202 {
        return RetryResult::Failed(format!(
            "retry rejected with {}: {:?}",
            resp.status,
            resp.text()
        ));
    }
    let fresh: JobInfo = match serde_json::from_str(resp.text().unwrap_or("")) {
        Ok(info) => info,
        Err(e) => return RetryResult::Failed(format!("bad retry response: {e}")),
    };
    match wait_terminal(client, fresh.id, deadline) {
        Poll::Missing => RetryResult::Failed("retried job vanished".to_string()),
        Poll::Hung => RetryResult::Hung,
        Poll::Terminal(info) => {
            if info.status == JobStatus::Completed
                && info.outcome.as_ref().is_some_and(|o| o.valid_mis)
            {
                RetryResult::CompletedValid
            } else {
                RetryResult::Failed(format!(
                    "retried job ended {:?} (error: {:?})",
                    info.status, info.error
                ))
            }
        }
    }
}

/// Polls the gauges until nothing is queued or running.
fn drain_store(client: &mut Client, deadline: Instant) -> bool {
    loop {
        if let Ok(resp) = client.get("/v1/metrics") {
            if let Ok(report) =
                serde_json::from_str::<mis_service::api::MetricsReport>(resp.text().unwrap_or("{}"))
            {
                if report.jobs.queued + report.jobs.running == 0 {
                    return true;
                }
            }
        }
        if Instant::now() > deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(25));
    }
}
