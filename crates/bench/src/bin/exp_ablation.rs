//! Ablation experiments (DESIGN.md §5): the switch probability `ζ`, the
//! switch implementation, and the initial-state strategy.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_ablation [-- --quick]`

use mis_bench::experiments::ablation::{
    ablation_csv, ablation_init_strategy, ablation_switch_implementation, ablation_switch_zeta,
};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();

    let zeta = ablation_switch_zeta(scale);
    print_section(
        "A1: 3-color stabilization vs switch probability ζ (paper: ζ = 2⁻⁷)",
        &ablation_csv(&zeta),
    );

    let switch = ablation_switch_implementation(scale);
    print_section(
        "A2: randomized logarithmic switch vs deterministic oracle switch",
        &ablation_csv(&switch),
    );

    let init = ablation_init_strategy(scale);
    print_section(
        "A3: 2-state stabilization time from different initializations (self-stabilization)",
        &ablation_csv(&init),
    );

    let mut all = zeta;
    all.extend(switch);
    all.extend(init);
    if let Ok(path) = write_results_file("ablation.csv", &ablation_csv(&all)) {
        println!("wrote {}", path.display());
    }
}
