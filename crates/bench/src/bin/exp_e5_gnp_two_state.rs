//! E5 — Theorem 2 / Theorem 19: the 2-state process on `G(n,p)` stabilizes
//! in polylog rounds for `p ≲ √(log n / n)` and for constant `p`.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e5_gnp_two_state [-- --quick]`

use mis_bench::experiments::stabilization::{e5_gnp_density_sweep, e5_gnp_two_state};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = e5_gnp_two_state(scale);
    print_section(
        "E5: 2-state process on G(n, p = sqrt(ln n / n)) (Theorem 2: polylog)",
        &report.table.to_pretty(),
    );
    println!(
        "fitted (ln n)^e exponent: {:.2}   (paper: polylog, small constant exponent)",
        report.polylog_exponent
    );
    println!(
        "fitted n^e exponent:      {:.2}   (paper: ~0)",
        report.power_exponent
    );
    if let Ok(path) = write_results_file("e5_gnp_two_state.csv", &report.table.to_csv()) {
        println!("wrote {}", path.display());
    }

    let density = e5_gnp_density_sweep(scale);
    print_section(
        "E5 (density): 2-state process across densities at fixed n; parameter = p",
        &density.to_pretty(),
    );
    if let Ok(path) = write_results_file("e5_gnp_density.csv", &density.to_csv()) {
        println!("wrote {}", path.display());
    }
}
