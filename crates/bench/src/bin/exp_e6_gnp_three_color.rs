//! E6 — Theorem 3 / Theorem 32: the 3-color process (18 states) stabilizes in
//! polylog rounds on `G(n,p)` across the whole density range.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e6_gnp_three_color [-- --quick]`

use mis_bench::experiments::stabilization::{e6_density_comparison, e6_gnp_three_color};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = e6_gnp_three_color(scale);
    print_section(
        "E6: 3-color process on G(n, p = n^-1/4) — the regime outside the 2-state analysis (Theorem 3: polylog)",
        &report.table.to_pretty(),
    );
    println!(
        "fitted (ln n)^e exponent: {:.2}   (paper: polylog, small constant exponent)",
        report.polylog_exponent
    );
    println!(
        "fitted n^e exponent:      {:.2}   (paper: ~0)",
        report.power_exponent
    );
    if let Ok(path) = write_results_file("e6_gnp_three_color.csv", &report.table.to_csv()) {
        println!("wrote {}", path.display());
    }

    let cmp = e6_density_comparison(scale);
    print_section(
        "E6 (comparison): 2-state vs 3-color across densities at fixed n; parameter = p",
        &cmp.to_pretty(),
    );
    if let Ok(path) = write_results_file("e6_density_comparison.csv", &cmp.to_csv()) {
        println!("wrote {}", path.display());
    }
}
