//! E7 — Lemma 18: `G(n,p)` random graphs satisfy the (n,p)-good properties
//! (P1)–(P6) of Definition 17 w.h.p.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e7_good_graphs [-- --quick]`

use mis_bench::experiments::structure::{e7_good_graphs, good_graph_csv};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = e7_good_graphs(scale);
    let csv = good_graph_csv(&rows);
    print_section(
        "E7: (n,p)-good graph properties of Definition 17 on sampled G(n,p)",
        &csv,
    );
    if let Ok(path) = write_results_file("e7_good_graphs.csv", &csv) {
        println!("wrote {}", path.display());
    }
    let all_good = rows.iter().all(|r| r.is_good);
    println!("all sampled graphs good: {all_good}   (Lemma 18: true w.h.p.)");
}
