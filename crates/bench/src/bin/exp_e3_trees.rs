//! E3 — Theorem 11: the 2-state process on bounded-arboricity graphs (trees,
//! forests, grids) stabilizes in `O(log n)` rounds.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e3_trees [-- --quick]`

use mis_bench::experiments::stabilization::{e3_bounded_arboricity_families, e3_trees};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = e3_trees(scale);
    print_section(
        "E3: 2-state process on random trees (Theorem 11: O(log n))",
        &report.table.to_pretty(),
    );
    println!(
        "fitted (ln n)^e exponent: {:.2}   (paper: ~1)",
        report.polylog_exponent
    );
    println!(
        "fitted n^e exponent:      {:.2}   (paper: ~0)",
        report.power_exponent
    );
    if let Ok(path) = write_results_file("e3_trees.csv", &report.table.to_csv()) {
        println!("wrote {}", path.display());
    }

    let families = e3_bounded_arboricity_families(scale);
    print_section(
        "E3 (families): other bounded-arboricity families at fixed n (1=path 2=cycle 3=star 4=tree 5=forests 6=grid)",
        &families.to_pretty(),
    );
    if let Ok(path) = write_results_file("e3_families.csv", &families.to_csv()) {
        println!("wrote {}", path.display());
    }
}
