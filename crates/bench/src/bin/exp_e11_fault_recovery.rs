//! E11 — self-stabilization under transient faults: corrupt a fraction of
//! the vertex states after stabilization and measure re-stabilization time.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e11_fault_recovery [-- --quick]`

use mis_bench::experiments::comparison::{e11_fault_recovery, recovery_csv};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = e11_fault_recovery(scale);
    let csv = recovery_csv(&rows);
    print_section(
        "E11: transient-fault recovery (every run must end in a valid MIS; small corruptions recover faster than full restarts)",
        &csv,
    );
    if let Ok(path) = write_results_file("e11_fault_recovery.csv", &csv) {
        println!("wrote {}", path.display());
    }
}
