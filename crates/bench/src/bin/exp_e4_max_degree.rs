//! E4 — Theorem 12: the stabilization time of the 2-state process is
//! `O(Δ log n)`; sweep over the degree of random regular graphs.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e4_max_degree [-- --quick]`

use mis_bench::experiments::stabilization::e4_max_degree;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = e4_max_degree(scale);
    print_section(
        "E4: 2-state process on d-regular graphs (Theorem 12: O(Δ log n)); parameter = d",
        &report.table.to_pretty(),
    );
    println!(
        "fitted d^e exponent: {:.2}   (paper: at most 1 — growth no worse than linear in Δ)",
        report.power_exponent
    );
    if let Ok(path) = write_results_file("e4_max_degree.csv", &report.table.to_csv()) {
        println!("wrote {}", path.display());
    }
}
