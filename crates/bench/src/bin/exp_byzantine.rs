//! Byzantine experiment: containment of adversarial vertices by the
//! 2-state, 3-state, and 3-color processes on sparse `G(n, 8/n)`, across
//! all four adversary strategies and random vs hub-targeted placement.
//!
//! Writes the machine-readable report to `results/exp_byzantine.json` and
//! the headline evidence file `BENCH_byzantine.json` at the workspace root.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_byzantine [-- --quick]`
//!
//! Exit status is non-zero when a gate fails:
//! * at the gate fraction (1% Byzantine vertices, random placement), any
//!   (process, strategy) pair that does not reach confirmed containment
//!   within the round budget;
//! * any trial whose final black set is not a valid MIS outside the
//!   radius-2 zone of the Byzantine set.

use mis_bench::experiments::byzantine::exp_byzantine;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

const HELP: &str = "\
exp_byzantine — Byzantine adversaries: containment within radius 2

USAGE: exp_byzantine [--quick] [--help]

  --quick  n = 10^5, random placement at the 1% gate fraction only (CI
           smoke); default is n = 10^6 across f in {0.1%, 1%, 5%} plus a
           hub-targeted placement at 1%
  --help   print this help

METHOD
  For each paper process (two-state, three-state, three-color), each
  adversary strategy (frozen, flipper, oscillator, spoofer), and each
  Byzantine fraction f: place ceil(f*n) adversarial vertices on G(n, 8/n),
  apply the adversary's override every round after the honest step, and
  drive until every unstable vertex lies within graph distance 2 of the
  Byzantine set for 3 consecutive rounds. Record the rounds to confirmed
  containment and the residual unstable fraction, then validate the final
  configuration as a MIS outside the radius-2 zone.

  A combined scenario then rides an *adaptive* adversary on a JoinLeave
  churn schedule (ByzantineSpec with victim re-sampling + ChurnSpec in one
  ExperimentSpec): victims isolated by a burst are re-sampled onto fresh
  vertices, and containment must be re-confirmed after every burst.

GATES (non-zero exit)
  any (process, strategy) pair uncontained at f = 1% random placement;
  any trial ending on an invalid MIS outside its Byzantine zone;
  any adaptive-adversary-under-churn trial uncontained or invalid.
";

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let scale = Scale::from_args();
    let report = exp_byzantine(scale);
    print_section(
        "BYZANTINE: adversarial containment within radius 2 on G(n, 8/n)",
        &report.to_pretty(),
    );
    let gate: Vec<String> = report
        .gate_rows()
        .map(|r| {
            format!(
                "{}/{}: contained in {} rounds, residual {:.2e}",
                r.algorithm, r.strategy, r.rounds_to_containment, r.residual_fraction
            )
        })
        .collect();
    println!(
        "containment at f = {} (random placement): {}",
        report.gate_fraction,
        gate.join("; ")
    );

    print_section(
        "BYZANTINE x CHURN: adaptive adversary under JoinLeave bursts",
        &report.churn_to_pretty(),
    );

    let json = report.to_json();
    if let Ok(path) = write_results_file("exp_byzantine.json", &json) {
        println!("wrote {}", path.display());
    }
    match std::fs::write("BENCH_byzantine.json", &json) {
        Ok(()) => println!("wrote BENCH_byzantine.json"),
        Err(e) => eprintln!("could not write BENCH_byzantine.json: {e}"),
    }

    let mut failed = false;
    if !report.gate_passes() {
        eprintln!(
            "GATE FAILED: a (process, strategy) pair did not contain a {}% Byzantine \
             placement within the round budget",
            report.gate_fraction * 100.0
        );
        failed = true;
    }
    if !report.all_valid() {
        eprintln!(
            "GATE FAILED: a trial ended uncontained or on an invalid MIS outside its \
             Byzantine zone"
        );
        failed = true;
    }
    if !report.churn_gate_passes() {
        eprintln!(
            "GATE FAILED: an adaptive-adversary-under-churn trial did not re-contain \
             its (re-sampled) Byzantine set or ended on an invalid MIS outside it"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
