//! E2 — Remark 9: the 2-state process on `√n` disjoint cliques `K_{√n}`
//! needs `Θ(log² n)` rounds.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e2_disjoint_cliques [-- --quick]`

use mis_bench::experiments::stabilization::e2_disjoint_cliques;
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let report = e2_disjoint_cliques(scale);
    print_section(
        "E2: 2-state process on sqrt(n) disjoint cliques (Remark 9: Θ(log² n))",
        &report.table.to_pretty(),
    );
    println!(
        "fitted (ln n)^e exponent: {:.2}   (paper: ~2)",
        report.polylog_exponent
    );
    println!(
        "fitted n^e exponent:      {:.2}   (paper: ~0)",
        report.power_exponent
    );
    if let Ok(path) = write_results_file("e2_disjoint_cliques.csv", &report.table.to_csv()) {
        println!("wrote {}", path.display());
    }
}
