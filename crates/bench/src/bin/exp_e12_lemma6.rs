//! E12 — Lemma 6: a `k`-active vertex becomes stable black within
//! `⌈log(k+1)⌉` rounds with probability at least `1/(2ek)`.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e12_lemma6 [-- --quick]`

use mis_bench::experiments::lemmas::{e12_lemma6, lemma6_csv};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = e12_lemma6(scale);
    let csv = lemma6_csv(&rows);
    print_section(
        "E12: Monte-Carlo check of Lemma 6 (empirical probability must dominate 1/(2ek))",
        &csv,
    );
    if let Ok(path) = write_results_file("e12_lemma6.csv", &csv) {
        println!("wrote {}", path.display());
    }
}
