//! E8 — Lemma 27: run-length properties (S1)–(S3) of the randomized
//! logarithmic switch.
//!
//! Usage: `cargo run --release -p mis-bench --bin exp_e8_log_switch [-- --quick]`

use mis_bench::experiments::structure::{e8_log_switch, switch_csv};
use mis_bench::report::{print_section, write_results_file};
use mis_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = e8_log_switch(scale);
    let csv = switch_csv(&rows);
    print_section(
        "E8: randomized logarithmic switch run lengths (Lemma 27: off-runs ≤ a ln n everywhere; on diam ≤ 2 graphs off-runs ≥ (a/6) ln n and on-runs ≤ 3)",
        &csv,
    );
    if let Ok(path) = write_results_file("e8_log_switch.csv", &csv) {
        println!("wrote {}", path.display());
    }
}
