//! Report output: every experiment binary prints a human-readable table to
//! stdout and writes the machine-readable CSV/JSON next to it under
//! `results/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root / current directory) where
/// experiment binaries drop their CSV and JSON outputs.
pub const RESULTS_DIR: &str = "results";

/// Writes `contents` to `results/<name>`, creating the directory if needed,
/// and returns the path written.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing the file.
pub fn write_results_file(name: &str, contents: &str) -> io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

/// Prints a titled section to stdout: a header line, a rule, and the body.
pub fn print_section(title: &str, body: &str) {
    println!("\n== {title} ==");
    println!("{}", "-".repeat(title.len() + 6));
    println!("{body}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_results_dir() {
        let dir = std::env::temp_dir().join(format!("mis-bench-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_results_file("unit_test.csv", "a,b\n1,2\n").unwrap();
        assert!(path.ends_with("results/unit_test.csv"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::env::set_current_dir(old).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn print_section_does_not_panic() {
        print_section("title", "body");
    }
}
