//! Scale experiment (`exp_scale`): activity-proportional round cost of the
//! incremental frontier engine on large sparse `G(n, p)`, and intra-round
//! parallel throughput of the counter-based engine.
//!
//! The naive round implementation costs `O(n + m)` regardless of how many
//! vertices are still active, so the long stabilization tail — where only a
//! few vertices flicker — is as expensive per round as the chaotic first
//! rounds. The [`FrontierEngine`](mis_core::engine::FrontierEngine) makes
//! the round cost track the active frontier instead. This experiment
//! quantifies that: for each `n` it measures round throughput (rounds/sec)
//! of the fast engine path and the retained naive reference path, in the
//! **early phase** (the initial configuration, where ~half the vertices are
//! active and the two paths should be comparable) and in the **late phase**
//! (active count at most `n / 64`, where the engine should win by orders of
//! magnitude).
//!
//! On top of that it sweeps the **counter-based parallel engine**
//! ([`ExecutionMode::Parallel`]) over a range of thread counts at the early
//! phase — the regime where `|A_t| ≈ n` and a sequential-stream round is
//! serial-bound — recording the rounds/sec trajectory per thread count and
//! verifying in-experiment that the final states are **bit-identical across
//! thread counts**. Parallel speedups are bounded by the host's cores
//! (recorded as `threads_available`); on a single-core host the sweep still
//! validates determinism but cannot show wall-clock gains.
//!
//! The headline numbers — the late-phase speedup and the parallel
//! early-phase speedup at the largest measured `n` (`10⁷` in full runs,
//! `10⁵` in quick/CI runs) — are recorded alongside the per-size rows in
//! `BENCH_scale.json` at the workspace root.

use std::time::{Duration, Instant};

use mis_core::init::InitStrategy;
use mis_core::{ExecutionMode, Process, RoundStrategy, TwoStateProcess};
use mis_graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// Thread counts the parallel early-phase sweep measures.
pub const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Throughput of one phase of one run: how many rounds were timed and the
/// resulting rounds/second for the fast (engine) and reference (full-scan)
/// step paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseThroughput {
    /// Rounds executed through the fast path while timing.
    pub fast_rounds: usize,
    /// Fast-path throughput in rounds per second.
    pub fast_rounds_per_sec: f64,
    /// Rounds executed through the reference path while timing.
    pub reference_rounds: usize,
    /// Reference-path throughput in rounds per second.
    pub reference_rounds_per_sec: f64,
    /// `fast_rounds_per_sec / reference_rounds_per_sec`.
    pub speedup: f64,
}

/// Early-phase throughput of the counter-based parallel engine at one
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadPoint {
    /// Worker threads of the intra-round phases.
    pub threads: usize,
    /// Rounds per second from the early-phase snapshot.
    pub rounds_per_sec: f64,
    /// Relative to the sequential engine's early-phase throughput
    /// (`early.fast_rounds_per_sec`).
    pub speedup_vs_sequential: f64,
}

/// Measurements of one graph size `n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges of the sampled graph.
    pub m: usize,
    /// Rounds the 2-state process needed to stabilize from a random init.
    pub rounds_to_stabilize: usize,
    /// The first round the `auto` strategy executed sparse after at least
    /// one dense round (the dense→sparse switch point of this run), if the
    /// switch happened within the observed prefix. `None` for forced
    /// strategies or runs that never switched.
    pub dense_sparse_switch_round: Option<usize>,
    /// Active-vertex count at which the late-phase snapshot was taken.
    pub late_phase_active: usize,
    /// Throughput at the initial (high-activity) configuration.
    pub early: PhaseThroughput,
    /// Throughput at the late (low-activity) tail.
    pub late: PhaseThroughput,
    /// Early-phase rounds/sec of the counter-based parallel engine, one
    /// point per thread count in [`SWEEP_THREADS`].
    pub early_parallel: Vec<ThreadPoint>,
    /// Whether all measured thread counts produced bit-identical states,
    /// black sets, counts, and random-bit tallies after the verification
    /// run.
    pub parallel_deterministic: bool,
}

/// The full report of the scale experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Average degree `d̄` of the sparse `G(n, d̄/n)` family.
    pub avg_degree: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Round strategy of the fast path (`auto`, `sparse`, or `dense`).
    pub strategy: String,
    /// CPU cores available to this run — the hard ceiling on any parallel
    /// speedup measured here.
    pub threads_available: usize,
    /// One row per graph size.
    pub rows: Vec<ScaleRow>,
}

impl ScaleReport {
    /// The late-phase speedup at the largest measured `n` (the last row) —
    /// the experiment's headline number and the CI gate's input.
    pub fn headline_speedup(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| r.late.speedup)
    }

    /// The best parallel early-phase speedup (over the sequential engine) at
    /// the largest measured `n`.
    pub fn headline_parallel_speedup(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| {
            r.early_parallel
                .iter()
                .map(|p| p.speedup_vs_sequential)
                .fold(0.0, f64::max)
        })
    }

    /// `true` if every row's thread-count determinism verification passed.
    pub fn all_deterministic(&self) -> bool {
        self.rows.iter().all(|r| r.parallel_deterministic)
    }

    /// The row measured at `n`, if any.
    pub fn row_at(&self, n: usize) -> Option<&ScaleRow> {
        self.rows.iter().find(|r| r.n == n)
    }

    /// Renders a human-readable fixed-width table.
    pub fn to_pretty(&self) -> String {
        let mut out = format!(
            "{:>9} {:>10} {:>8} {:>8} {:>9} {:>13} {:>9} {:>13} {:>9} {:>22} {:>6}\n",
            "n",
            "m",
            "rounds",
            "|A|late",
            "switch@",
            "early fast/s",
            "early spd",
            "late fast/s",
            "late spd",
            "early par/s (1/2/4/8)",
            "deter"
        );
        for r in &self.rows {
            let par = r
                .early_parallel
                .iter()
                .map(|p| format!("{:.0}", p.rounds_per_sec))
                .collect::<Vec<_>>()
                .join("/");
            out.push_str(&format!(
                "{:>9} {:>10} {:>8} {:>8} {:>9} {:>13.0} {:>8.2}x {:>13.0} {:>8.1}x {:>22} {:>6}\n",
                r.n,
                r.m,
                r.rounds_to_stabilize,
                r.late_phase_active,
                r.dense_sparse_switch_round
                    .map_or("-".to_string(), |round| round.to_string()),
                r.early.fast_rounds_per_sec,
                r.early.speedup,
                r.late.fast_rounds_per_sec,
                r.late.speedup,
                par,
                if r.parallel_deterministic {
                    "ok"
                } else {
                    "FAIL"
                },
            ));
        }
        out
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ScaleReport serializes")
    }
}

/// Times repeated replays from `snapshot` (process + RNG cloned outside the
/// timed region) and returns total rounds and wall time. Each replay runs
/// until stabilization or `max_rounds_per_rep` rounds; if the snapshot is
/// already stabilized, a replay times `idle_rounds` silent rounds instead
/// (the engine's steady-state cost). The snapshot's execution mode is
/// honored, so a parallel-mode snapshot times the counter-based parallel
/// path (for which the cloned RNG is ignored).
fn time_step_path(
    snapshot: &TwoStateProcess<'_>,
    rng_snapshot: &ChaCha8Rng,
    reference: bool,
    min_time: Duration,
    max_reps: usize,
    max_rounds_per_rep: usize,
) -> (usize, Duration) {
    let idle_rounds = 10;
    let mut total_rounds = 0usize;
    let mut total = Duration::ZERO;
    let mut reps = 0;
    while (total < min_time && reps < max_reps) || reps == 0 {
        let mut proc = snapshot.clone();
        let mut rng = rng_snapshot.clone();
        let started = Instant::now();
        let mut rounds = 0usize;
        while !proc.is_stabilized() && rounds < max_rounds_per_rep {
            if reference {
                proc.step_reference(&mut rng);
            } else {
                proc.step(&mut rng);
            }
            rounds += 1;
        }
        if rounds == 0 {
            // Already stabilized: time the silent steady state.
            for _ in 0..idle_rounds {
                if reference {
                    proc.step_reference(&mut rng);
                } else {
                    proc.step(&mut rng);
                }
            }
            rounds = idle_rounds;
        }
        total += started.elapsed();
        total_rounds += rounds;
        reps += 1;
    }
    (total_rounds, total)
}

fn throughput(
    snapshot: &TwoStateProcess<'_>,
    rng_snapshot: &ChaCha8Rng,
    min_time: Duration,
    max_reps: usize,
    max_rounds_per_rep: usize,
) -> PhaseThroughput {
    // Interleave several fast/reference measurement passes and score each
    // path by its best pass. Timing the two paths in one long window each
    // makes the ratio hostage to transient background load (a spike during
    // one window skews the speedup by 2x on a busy host); interleaving
    // exposes both paths to the same conditions and best-of discards the
    // disturbed passes.
    let slice = min_time / MEASUREMENT_PASSES;
    let reps_per_pass = (max_reps / MEASUREMENT_PASSES as usize).max(1);
    let mut fast_rounds = 0usize;
    let mut reference_rounds = 0usize;
    let mut fast_rounds_per_sec = 0.0f64;
    let mut reference_rounds_per_sec = 0.0f64;
    for _ in 0..MEASUREMENT_PASSES {
        let (rounds, rate) = measure_pass(
            snapshot,
            rng_snapshot,
            false,
            slice,
            reps_per_pass,
            max_rounds_per_rep,
        );
        fast_rounds += rounds;
        fast_rounds_per_sec = fast_rounds_per_sec.max(rate);
        let (rounds, rate) = measure_pass(
            snapshot,
            rng_snapshot,
            true,
            slice,
            reps_per_pass,
            max_rounds_per_rep,
        );
        reference_rounds += rounds;
        reference_rounds_per_sec = reference_rounds_per_sec.max(rate);
    }
    PhaseThroughput {
        fast_rounds,
        fast_rounds_per_sec,
        reference_rounds,
        reference_rounds_per_sec,
        speedup: fast_rounds_per_sec / reference_rounds_per_sec.max(1e-9),
    }
}

/// Number of interleaved measurement slices per timed path; every rate in
/// the report is the best slice, so a transient load spike costs one slice,
/// not the whole measurement.
const MEASUREMENT_PASSES: u32 = 3;

/// One measurement slice: total rounds and the resulting rounds/second.
fn measure_pass(
    snapshot: &TwoStateProcess<'_>,
    rng_snapshot: &ChaCha8Rng,
    reference: bool,
    slice: Duration,
    max_reps: usize,
    max_rounds_per_rep: usize,
) -> (usize, f64) {
    let (rounds, time) = time_step_path(
        snapshot,
        rng_snapshot,
        reference,
        slice,
        max_reps,
        max_rounds_per_rep,
    );
    (rounds, rounds as f64 / time.as_secs_f64().max(1e-9))
}

/// Best-of-[`MEASUREMENT_PASSES`] throughput of one (non-reference) snapshot
/// — the same scoring the fast/reference comparison uses, applied to the
/// parallel thread sweep so its speedup-vs-sequential ratios are not biased
/// by comparing a single-window rate against a best-of rate.
fn best_rate(
    snapshot: &TwoStateProcess<'_>,
    rng_snapshot: &ChaCha8Rng,
    min_time: Duration,
    max_reps: usize,
    max_rounds_per_rep: usize,
) -> f64 {
    let slice = min_time / MEASUREMENT_PASSES;
    let reps_per_pass = (max_reps / MEASUREMENT_PASSES as usize).max(1);
    let mut best = 0.0f64;
    for _ in 0..MEASUREMENT_PASSES {
        let (_, rate) = measure_pass(
            snapshot,
            rng_snapshot,
            false,
            slice,
            reps_per_pass,
            max_rounds_per_rep,
        );
        best = best.max(rate);
    }
    best
}

/// Runs `verify_rounds` counter-based rounds at every sweep thread count
/// from a clone of `proc` and checks that states, black sets, counts, and
/// random-bit tallies agree bit for bit.
fn verify_thread_count_determinism(
    proc: &TwoStateProcess<'_>,
    counter_seed: u64,
    verify_rounds: usize,
) -> bool {
    let mut baseline = None;
    for &threads in &SWEEP_THREADS {
        let mut replica = proc.clone();
        replica.set_execution(ExecutionMode::Parallel { threads }, counter_seed);
        let mut unused = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..verify_rounds {
            if replica.is_stabilized() {
                break;
            }
            replica.step(&mut unused);
        }
        let observation = (
            replica.states(),
            replica.black_set(),
            replica.counts(),
            replica.random_bits_used(),
            replica.round(),
        );
        match &baseline {
            None => baseline = Some(observation),
            Some(expected) => {
                if &observation != expected {
                    return false;
                }
            }
        }
    }
    true
}

/// Runs the scale measurement for the 2-state process on sparse
/// `G(n, avg_degree/n)` at each size in `ns`.
///
/// For each `n`: sample the graph, snapshot the initial (early-phase)
/// configuration, run the fast path until the active count drops to
/// `n / 64` (the late-phase entry), snapshot again, then measure fast and
/// reference round throughput from both snapshots, sweep the counter-based
/// parallel engine over [`SWEEP_THREADS`] from the early snapshot, and
/// verify thread-count determinism. RNG clones guarantee the fast and
/// reference replays execute the exact same rounds.
///
/// # Panics
///
/// Panics if the process fails to stabilize within 1,000,000 rounds (the
/// 2-state process on sparse `G(n,p)` stabilizes in polylog rounds w.h.p.).
pub fn scale_measurement(
    ns: &[usize],
    avg_degree: f64,
    seed: u64,
    strategy: RoundStrategy,
) -> ScaleReport {
    let min_time = Duration::from_millis(120);
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for &n in ns {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ n as u64);
        // Counter-based parallel generation: graph setup (not rounds)
        // dominates wall-clock at n = 10^7, and the keyed per-row streams
        // make the sample independent of the worker-thread count.
        let g = generators::gnp_counter(n, avg_degree / n as f64, seed ^ n as u64);
        let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        proc.set_strategy(strategy);
        let proc = proc;

        // Early phase: the initial configuration, roughly half the vertices
        // active. Few rounds per replay — activity decays fast.
        let early = throughput(&proc, &rng, min_time, 40, 3);

        // Counter-based parallel engine from the same early snapshot, one
        // point per thread count. (Its random trajectory differs from the
        // sequential stream — counter-based draws — but the workload is the
        // same high-activity regime.)
        let counter_seed = seed ^ 0xC0DE ^ n as u64;
        let early_parallel: Vec<ThreadPoint> = SWEEP_THREADS
            .iter()
            .map(|&threads| {
                let mut snapshot = proc.clone();
                snapshot.set_execution(ExecutionMode::Parallel { threads }, counter_seed);
                let rounds_per_sec = best_rate(&snapshot, &rng, min_time, 40, 3);
                ThreadPoint {
                    threads,
                    rounds_per_sec,
                    speedup_vs_sequential: rounds_per_sec / early.fast_rounds_per_sec.max(1e-9),
                }
            })
            .collect();

        // Bit-identical states across thread counts, verified on a short
        // prefix of the parallel run.
        let parallel_deterministic = verify_thread_count_determinism(&proc, counter_seed, 12);

        // Advance (on a clone driven by the same RNG) to the late phase:
        // active count at most n / 64. Record where the adaptive strategy
        // hands over from the dense sweep to the sparse worklist.
        let threshold = (n / 64).max(1);
        let mut late_proc = proc.clone();
        let mut late_rng = rng.clone();
        let mut dense_sparse_switch_round = None;
        let mut seen_dense = false;
        while !late_proc.is_stabilized() && late_proc.counts().active > threshold {
            late_proc.step(&mut late_rng);
            if late_proc.last_round_was_dense() {
                seen_dense = true;
            } else if seen_dense && dense_sparse_switch_round.is_none() {
                dense_sparse_switch_round = Some(late_proc.round());
            }
        }
        let late_phase_active = late_proc.counts().active;
        let late = throughput(&late_proc, &late_rng, min_time, 200, 400);

        // Finally drive the late snapshot to stabilization for the round count.
        let mut finish = late_proc.clone();
        let mut finish_rng = late_rng.clone();
        finish
            .run_to_stabilization(&mut finish_rng, 1_000_000)
            .expect("2-state process stabilizes on sparse G(n,p)");
        rows.push(ScaleRow {
            n,
            m: g.m(),
            rounds_to_stabilize: finish.round(),
            dense_sparse_switch_round,
            late_phase_active,
            early,
            late,
            early_parallel,
            parallel_deterministic,
        });
    }
    ScaleReport {
        avg_degree,
        seed,
        strategy: strategy.label().to_string(),
        threads_available,
        rows,
    }
}

/// The `exp_scale` experiment at the given [`Scale`]: sparse `G(n, 8/n)` at
/// `n = 10⁵` (quick) or `n ∈ {10⁴, 10⁵, 10⁶, 10⁷}` (full).
pub fn exp_scale(scale: Scale, strategy: RoundStrategy) -> ScaleReport {
    let ns: &[usize] = match scale {
        Scale::Quick => &[100_000],
        Scale::Full => &[10_000, 100_000, 1_000_000, 10_000_000],
    };
    scale_measurement(ns, 8.0, 20_250, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_measurement_produces_sane_rows() {
        // Tiny sizes keep the (debug-build) test fast; the timing numbers are
        // not asserted against a threshold here — that's the release-mode
        // binary's job — only their plumbing.
        let report = scale_measurement(&[2_000, 4_000], 6.0, 99, RoundStrategy::Auto);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.strategy, "auto");
        assert!(report.threads_available >= 1);
        // From a random init the early phase is dense; the adaptive engine
        // must record the dense -> sparse handover on the way down.
        assert!(report
            .rows
            .iter()
            .all(|r| r.dense_sparse_switch_round.is_some()));
        for row in &report.rows {
            assert!(row.m > 0);
            assert!(row.rounds_to_stabilize > 0);
            assert!(row.late_phase_active <= (row.n / 64).max(1));
            assert!(row.early.fast_rounds_per_sec > 0.0);
            assert!(row.late.fast_rounds_per_sec > 0.0);
            assert!(row.late.reference_rounds_per_sec > 0.0);
            assert!(row.late.speedup > 0.0);
            assert_eq!(row.early_parallel.len(), SWEEP_THREADS.len());
            for (point, &threads) in row.early_parallel.iter().zip(SWEEP_THREADS.iter()) {
                assert_eq!(point.threads, threads);
                assert!(point.rounds_per_sec > 0.0);
                assert!(point.speedup_vs_sequential > 0.0);
            }
            assert!(
                row.parallel_deterministic,
                "thread counts must agree bit for bit"
            );
        }
        assert_eq!(report.headline_speedup(), report.rows[1].late.speedup);
        assert!(report.headline_parallel_speedup() > 0.0);
        assert!(report.all_deterministic());
        assert!(report.row_at(2_000).is_some());
        assert!(report.row_at(3_000).is_none());
        let json = report.to_json();
        let back: ScaleReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(report.to_pretty().lines().count() == 3);
        // Forced strategies never report a switch round.
        let forced = scale_measurement(&[1_000], 6.0, 99, RoundStrategy::Sparse);
        assert_eq!(forced.strategy, "sparse");
        assert!(forced.rows[0].dense_sparse_switch_round.is_none());
    }
}
