//! Byzantine experiment (`exp_byzantine`): adversarial containment of the
//! paper processes on large sparse `G(n, 8/n)`.
//!
//! A Byzantine vertex never follows its process: every round, after the
//! honest step, an adversary ([`ByzantineStrategy`]) rewrites its displayed
//! state. Global stabilization is then unreachable in general, so the
//! driver terminates on **containment**: every unstable vertex lies within
//! graph distance [`CONTAINMENT_RADIUS`] of the Byzantine set, confirmed
//! for [`mis_sim::CONTAINMENT_CONFIRM_ROUNDS`] consecutive rounds, and the
//! final configuration is validated with
//! [`mis_graph::mis_check::is_mis_outside`].
//!
//! For each paper process (2-state, 3-state, 3-color), each adversary
//! strategy, and each Byzantine fraction `f`:
//!
//! 1. place `⌈f·n⌉` adversarial vertices (uniformly at random, plus a
//!    hub-targeted placement on the highest-degree vertices at the gate
//!    fraction in the full run);
//! 2. drive the process with the overlay applied every round and record
//!    the first round at which containment held and the round at which the
//!    confirmed containment terminated the trial;
//! 3. record the **residual** instability at termination: how many
//!    vertices were still unstable (all of them inside the containment
//!    zone) and what fraction of `n` that is.
//!
//! The headline claim — and the CI gate — is that at `f = 1%` every
//! process contains every adversary strategy: damage stays within the
//! 2-neighborhood of the Byzantine set instead of cascading, and the rest
//! of the graph computes a valid MIS.

use mis_core::init::InitStrategy;
use mis_core::{
    AlgorithmConfig, ByzantineOverlay, ByzantineStrategy, ExecutionMode, RoundStrategy,
};
use mis_graph::{generators, mis_check};
use mis_sim::spec::{SchedulerSpec, VictimSelection};
use mis_sim::{
    builtin_registry, drive_algorithm, run_experiment, ByzantineSpec, ChurnScenario, ChurnSpec,
    EventLogObserver, ExperimentSpec, GraphSpec, Observer, CONTAINMENT_RADIUS,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// The three paper processes the experiment hardens.
pub const ENGINE_PROCESSES: [&str; 3] = ["two-state", "three-state", "three-color"];

/// The Byzantine fraction the CI gate checks.
pub const GATE_FRACTION: f64 = 0.01;

/// Round budget per trial; containment on sparse `G(n,p)` is polylog, so
/// hitting this means something is broken.
const MAX_ROUNDS: usize = 1_000_000;

/// One measurement: one process, one adversary strategy, one placement,
/// one Byzantine fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByzantineRow {
    /// Registry key of the process.
    pub algorithm: String,
    /// Adversary strategy label (`frozen`, `flipper`, `oscillator`,
    /// `spoofer`).
    pub strategy: String,
    /// Victim placement: `random` or `high-degree`.
    pub placement: String,
    /// Requested Byzantine fraction `f` (`⌈f·n⌉` adversarial vertices).
    pub fraction: f64,
    /// Vertices of the graph.
    pub n: usize,
    /// Edges of the graph.
    pub m: usize,
    /// Adversarial vertices actually placed.
    pub byzantine_count: usize,
    /// First round at which containment held (possibly transiently).
    pub first_contained_at: Option<usize>,
    /// Rounds until the confirmed-containment streak terminated the trial.
    pub rounds_to_containment: usize,
    /// Vertices still unstable at termination (all inside the containment
    /// zone when `contained`).
    pub residual_unstable: usize,
    /// `residual_unstable / n`.
    pub residual_fraction: f64,
    /// Whether the trial terminated contained within the round budget.
    pub contained: bool,
    /// Whether the final black set is a valid MIS outside the
    /// radius-[`CONTAINMENT_RADIUS`] zone of the Byzantine set.
    pub valid_outside: bool,
}

/// One combined Byzantine-under-churn measurement: an *adaptive* adversary
/// (victims isolated by churn are re-sampled onto fresh vertices) riding a
/// `JoinLeave` churn schedule, driven through the spec-level pipeline
/// (`ByzantineSpec` + `ChurnSpec` in one `ExperimentSpec`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByzantineChurnRow {
    /// Registry key of the process.
    pub algorithm: String,
    /// Adversary strategy label.
    pub strategy: String,
    /// Vertices of the graph.
    pub n: usize,
    /// Trials driven.
    pub trials: usize,
    /// Trials that reached confirmed containment after every churn burst.
    pub contained: usize,
    /// Trials whose final black set was a valid MIS outside the zone of
    /// the *final* (post-re-sampling) Byzantine set.
    pub valid: usize,
    /// Mean rounds to termination across trials.
    pub mean_rounds: f64,
}

/// The full report of the Byzantine experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByzantineReport {
    /// Average degree `d̄` of the sparse `G(n, d̄/n)` family.
    pub avg_degree: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// The Byzantine fraction the gate checks.
    pub gate_fraction: f64,
    /// The containment radius the driver and the validator use.
    pub containment_radius: usize,
    /// One row per (process, strategy, placement, fraction).
    pub rows: Vec<ByzantineRow>,
    /// One row per (process, strategy): adaptive adversary × churn.
    pub churn_rows: Vec<ByzantineChurnRow>,
}

impl ByzantineReport {
    /// The random-placement rows measured at the gate fraction.
    pub fn gate_rows(&self) -> impl Iterator<Item = &ByzantineRow> {
        let gate = self.gate_fraction;
        self.rows
            .iter()
            .filter(move |r| r.placement == "random" && (r.fraction - gate).abs() < 1e-12)
    }

    /// `true` if, at the gate fraction, every (process, strategy) pair
    /// contained the adversary and computed a valid MIS outside the zone.
    pub fn gate_passes(&self) -> bool {
        let mut saw_any = false;
        for row in self.gate_rows() {
            saw_any = true;
            if !(row.contained && row.valid_outside) {
                return false;
            }
        }
        saw_any
    }

    /// `true` if every row ended contained on a valid MIS outside its
    /// Byzantine zone.
    pub fn all_valid(&self) -> bool {
        self.rows.iter().all(|r| r.contained && r.valid_outside)
    }

    /// `true` if every Byzantine-under-churn trial re-contained the
    /// (re-sampled) adversary and ended on a valid MIS outside its zone.
    pub fn churn_gate_passes(&self) -> bool {
        !self.churn_rows.is_empty()
            && self
                .churn_rows
                .iter()
                .all(|r| r.contained == r.trials && r.valid == r.trials)
    }

    /// Renders the Byzantine-under-churn rows as a fixed-width table.
    pub fn churn_to_pretty(&self) -> String {
        let mut out = format!(
            "{:>12} {:>10} {:>9} {:>7} {:>10} {:>6} {:>12}\n",
            "process", "strategy", "n", "trials", "contained", "valid", "mean-rounds"
        );
        for r in &self.churn_rows {
            out.push_str(&format!(
                "{:>12} {:>10} {:>9} {:>7} {:>10} {:>6} {:>12.1}\n",
                r.algorithm, r.strategy, r.n, r.trials, r.contained, r.valid, r.mean_rounds,
            ));
        }
        out
    }

    /// Renders a human-readable fixed-width table.
    pub fn to_pretty(&self) -> String {
        let mut out = format!(
            "{:>12} {:>10} {:>11} {:>9} {:>7} {:>10} {:>10} {:>9} {:>10} {:>6}\n",
            "process",
            "strategy",
            "placement",
            "fraction",
            "byz",
            "first@",
            "contained",
            "residual",
            "res-frac",
            "valid"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>12} {:>10} {:>11} {:>9} {:>7} {:>10} {:>10} {:>9} {:>10.2e} {:>6}\n",
                r.algorithm,
                r.strategy,
                r.placement,
                r.fraction,
                r.byzantine_count,
                r.first_contained_at
                    .map_or_else(|| "-".to_string(), |x| x.to_string()),
                if r.contained {
                    r.rounds_to_containment.to_string()
                } else {
                    "TIMEOUT".to_string()
                },
                r.residual_unstable,
                r.residual_fraction,
                if r.valid_outside { "ok" } else { "FAIL" },
            ));
        }
        out
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ByzantineReport serializes")
    }
}

/// One placement to measure: how victims are chosen, at which fraction.
#[derive(Debug, Clone, Copy)]
struct Placement {
    label: &'static str,
    fraction: f64,
}

fn victims_for(placement: Placement, graph: &mis_graph::Graph, seed: u64) -> Vec<usize> {
    let count = ((placement.fraction * graph.n() as f64).ceil() as usize).max(1);
    let selection = match placement.label {
        "high-degree" => VictimSelection::HighDegree { count },
        _ => VictimSelection::Random { count },
    };
    selection.resolve(graph, seed)
}

/// Runs the containment measurement at one graph size for every engine
/// process, every adversary strategy, and every placement.
///
/// # Panics
///
/// Panics if the registry is missing an engine process (a bug). Trials
/// that exhaust the round budget are *recorded* as uncontained, not
/// panicked on — the gate reports them.
pub fn byzantine_measurement(
    n: usize,
    avg_degree: f64,
    random_fractions: &[f64],
    hub_fractions: &[f64],
    seed: u64,
) -> ByzantineReport {
    let registry = builtin_registry();
    let g = generators::gnp_counter(n, avg_degree / n as f64, seed ^ n as u64);
    let mut placements: Vec<Placement> = random_fractions
        .iter()
        .map(|&fraction| Placement {
            label: "random",
            fraction,
        })
        .collect();
    placements.extend(hub_fractions.iter().map(|&fraction| Placement {
        label: "high-degree",
        fraction,
    }));

    let mut rows = Vec::new();
    for key in ENGINE_PROCESSES {
        let factory = registry
            .get(key)
            .unwrap_or_else(|| panic!("registry is missing engine process '{key}'"));
        for (si, strategy) in ByzantineStrategy::all().into_iter().enumerate() {
            for (pi, &placement) in placements.iter().enumerate() {
                let trial_seed = seed ^ ((si as u64) << 16) ^ ((pi as u64) << 8) ^ key.len() as u64;
                let mut rng = ChaCha8Rng::seed_from_u64(trial_seed);
                let victims = victims_for(placement, &g, trial_seed ^ 0xb12a);
                let byzantine_count = victims.len();
                let overlay = ByzantineOverlay::new(strategy, victims, trial_seed ^ 0xb12a);

                let config = AlgorithmConfig {
                    init: InitStrategy::Random,
                    execution: ExecutionMode::Sequential,
                    strategy: RoundStrategy::Auto,
                    counter_seed: seed,
                };
                let mut alg = factory.init(&g, &config, &mut rng);
                let mut scheduler = SchedulerSpec::Synchronous.build();
                let mut log = EventLogObserver::default();
                let outcome = {
                    let mut observers: Vec<&mut dyn Observer> = vec![&mut log];
                    drive_algorithm(
                        alg.as_mut(),
                        scheduler.as_mut(),
                        &mut rng,
                        MAX_ROUNDS,
                        None,
                        None,
                        Some(&overlay),
                        &mut observers,
                    )
                };

                let residual_unstable = alg.counts().unstable;
                let final_graph = alg.current_graph().expect("engine process has a graph");
                let valid_outside = mis_check::is_mis_outside(
                    final_graph,
                    &outcome.black_set,
                    &overlay.vertices(),
                    CONTAINMENT_RADIUS,
                );
                rows.push(ByzantineRow {
                    algorithm: key.to_string(),
                    strategy: strategy.label().to_string(),
                    placement: placement.label.to_string(),
                    fraction: placement.fraction,
                    n,
                    m: g.m(),
                    byzantine_count,
                    first_contained_at: log.first_contained_at(),
                    rounds_to_containment: outcome.rounds,
                    residual_unstable,
                    residual_fraction: residual_unstable as f64 / n as f64,
                    contained: outcome.stabilized,
                    valid_outside,
                });
            }
        }
    }
    ByzantineReport {
        avg_degree,
        seed,
        gate_fraction: GATE_FRACTION,
        containment_radius: CONTAINMENT_RADIUS,
        rows,
        churn_rows: Vec::new(),
    }
}

/// The combined scenario: an adaptive adversary at the gate fraction rides
/// a `JoinLeave` churn schedule, all through the spec-level pipeline —
/// `ByzantineSpec` (with victim re-sampling) and `ChurnSpec` in one
/// `ExperimentSpec`. Each burst detaches 2% of the vertices; victims that
/// depart are re-sampled onto fresh ones before containment is re-judged,
/// so the adversary never wastes budget on ghosts.
///
/// # Panics
///
/// Panics if the registry is missing an engine process (a bug).
pub fn byzantine_churn_measurement(n: usize, trials: usize, seed: u64) -> Vec<ByzantineChurnRow> {
    let join = (n / 100).max(1);
    let leave = (n / 50).max(2);
    let mut rows = Vec::new();
    for key in ENGINE_PROCESSES {
        for strategy in ByzantineStrategy::all() {
            let count = ((GATE_FRACTION * n as f64).ceil() as usize).max(1);
            let spec = ExperimentSpec::builder()
                .name(format!("byzantine-churn-{key}-{}", strategy.label()))
                .graph(GraphSpec::Gnp {
                    n,
                    p: 8.0 / n as f64,
                })
                .algorithm(key)
                .byzantine(
                    ByzantineSpec::new(strategy, VictimSelection::Random { count })
                        .seed(seed ^ 0xb12a)
                        .resample(true),
                )
                .churn(
                    ChurnSpec::after_stabilization(ChurnScenario::JoinLeave { join, leave })
                        .bursts(2),
                )
                .trials(trials)
                .max_rounds(MAX_ROUNDS)
                .base_seed(seed ^ key.len() as u64)
                .build();
            let result = run_experiment(&spec);
            let contained = result.trials.iter().filter(|t| t.stabilized).count();
            let valid = result.trials.iter().filter(|t| t.valid_mis).count();
            let mean_rounds = result.trials.iter().map(|t| t.rounds as f64).sum::<f64>()
                / result.trials.len().max(1) as f64;
            rows.push(ByzantineChurnRow {
                algorithm: key.to_string(),
                strategy: strategy.label().to_string(),
                n,
                trials: result.trials.len(),
                contained,
                valid,
                mean_rounds,
            });
        }
    }
    rows
}

/// The `exp_byzantine` experiment at the given [`Scale`]: sparse
/// `G(n, 8/n)` at `n = 10⁵` with random placement at the gate fraction
/// only (quick/CI), or `n = 10⁶` across a fraction sweep plus a
/// hub-targeted placement at the gate fraction (full).
pub fn exp_byzantine(scale: Scale) -> ByzantineReport {
    let (n, random_fractions, hub_fractions): (usize, &[f64], &[f64]) = match scale {
        Scale::Quick => (100_000, &[GATE_FRACTION], &[]),
        Scale::Full => (1_000_000, &[0.001, GATE_FRACTION, 0.05], &[GATE_FRACTION]),
    };
    let mut report = byzantine_measurement(n, 8.0, random_fractions, hub_fractions, 20_260);
    let (churn_n, churn_trials) = match scale {
        Scale::Quick => (20_000, 2),
        Scale::Full => (100_000, 4),
    };
    report.churn_rows = byzantine_churn_measurement(churn_n, churn_trials, 20_260);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byzantine_measurement_produces_sane_rows() {
        // Tiny size keeps the debug-build test fast; the n = 10^5 gate is
        // the release binary's job, only plumbing and invariants here.
        let report = byzantine_measurement(2_000, 6.0, &[GATE_FRACTION], &[GATE_FRACTION], 77);
        // 3 processes x 4 strategies x (1 random + 1 hub) placements.
        assert_eq!(report.rows.len(), 24);
        assert!(report.all_valid(), "{}", report.to_pretty());
        assert_eq!(report.gate_rows().count(), 12);
        for row in &report.rows {
            assert_eq!(row.n, 2_000);
            assert!(row.m > 0);
            assert!(row.byzantine_count >= 1);
            assert!(row.contained);
            assert!(row.rounds_to_containment > 0);
            assert!(
                row.first_contained_at.is_some(),
                "containment requires a first contained round"
            );
            assert!(row.residual_fraction < 1.0);
        }
        let json = report.to_json();
        let back: ByzantineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(report.to_pretty().lines().count(), report.rows.len() + 1);
    }

    #[test]
    fn byzantine_churn_measurement_contains_adaptive_adversaries() {
        let rows = byzantine_churn_measurement(2_000, 1, 99);
        // 3 processes x 4 strategies.
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert_eq!(r.trials, 1);
            assert_eq!(
                r.contained, r.trials,
                "{}/{} failed to re-contain",
                r.algorithm, r.strategy
            );
            assert_eq!(
                r.valid, r.trials,
                "{}/{} ended on an invalid MIS",
                r.algorithm, r.strategy
            );
            assert!(r.mean_rounds > 0.0);
        }
        let report = ByzantineReport {
            avg_degree: 8.0,
            seed: 99,
            gate_fraction: GATE_FRACTION,
            containment_radius: CONTAINMENT_RADIUS,
            rows: Vec::new(),
            churn_rows: rows,
        };
        assert!(report.churn_gate_passes());
        assert_eq!(
            report.churn_to_pretty().lines().count(),
            report.churn_rows.len() + 1
        );
    }

    #[test]
    fn gate_passes_at_small_scale() {
        // The gate itself (quick scale is n = 10^5, too slow for a debug
        // test): already at n = 10k every process must contain every
        // strategy at f = 1%.
        let report = byzantine_measurement(10_000, 8.0, &[GATE_FRACTION], &[], 20_260);
        assert!(report.gate_passes(), "{}", report.to_pretty());
    }
}
