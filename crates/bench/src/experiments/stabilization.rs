//! Stabilization-time scaling experiments (E1–E6, E9).
//!
//! Each experiment sweeps a graph family over its natural parameter, runs the
//! relevant process for a batch of trials per point, and fits the growth of
//! the mean stabilization time so the measured *shape* can be compared with
//! the theorem's claimed bound.

use mis_core::init::InitStrategy;
use mis_sim::runner::run_experiment;
use mis_sim::spec::{ExecutionMode, ExperimentSpec, GraphSpec};
use mis_sim::sweep::{run_sweep, SweepTable};

use crate::fit::{polylog_exponent, power_exponent};
use crate::Scale;

/// A scaling experiment's result: the raw sweep table plus fitted growth
/// exponents of the mean stabilization time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// One row per swept parameter value.
    pub table: SweepTable,
    /// Exponent `e` of the fit `rounds ≈ c · (ln n)^e` (1 ≈ logarithmic,
    /// 2 ≈ log², …).
    pub polylog_exponent: f64,
    /// Exponent `e` of the fit `rounds ≈ c · n^e` (≈ 0 for poly-logarithmic
    /// behaviour, ≈ 1 for linear).
    pub power_exponent: f64,
}

impl ScalingReport {
    fn from_table(table: SweepTable) -> Self {
        let ns: Vec<f64> = table.rows.iter().map(|r| r.parameter).collect();
        let rounds: Vec<f64> = table.rows.iter().map(|r| r.rounds.mean.max(1.0)).collect();
        let (polylog, power) = if ns.len() >= 2 && ns.iter().all(|&n| n > 1.0) {
            (polylog_exponent(&ns, &rounds), power_exponent(&ns, &rounds))
        } else {
            (0.0, 0.0)
        };
        ScalingReport {
            table,
            polylog_exponent: polylog,
            power_exponent: power,
        }
    }
}

fn spec(
    name: &str,
    graph: GraphSpec,
    algorithm: &str,
    trials: usize,
    base_seed: u64,
) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        graph,
        algorithm: algorithm.to_string(),
        init: InitStrategy::Random,
        execution: ExecutionMode::Sequential,
        trials,
        max_rounds: 1_000_000,
        base_seed,
        record_trace: false,
        ..ExperimentSpec::default()
    }
}

/// E1 — Theorem 8: the 2-state process on the complete graph `K_n` takes
/// `O(log n)` rounds in expectation and `Θ(log² n)` w.h.p.
///
/// Returns the scaling sweep; the companion tail statistics are produced by
/// [`e1_clique_tail`].
pub fn e1_clique(scale: Scale) -> ScalingReport {
    let sizes = scale.sizes(&[32, 64, 128], &[64, 128, 256, 512, 1024, 2048]);
    let trials = scale.trials(64);
    let table = run_sweep(sizes.into_iter().map(|n| {
        (
            n as f64,
            spec(
                "e1-clique",
                GraphSpec::Complete { n },
                "two-state",
                trials,
                100,
            ),
        )
    }));
    ScalingReport::from_table(table)
}

/// E1 (tail) — Theorem 8's tail bound: `P[T ≥ k · log n] = 2^{-Θ(k)}`.
///
/// Returns `(k, empirical fraction of trials with T ≥ k · log₂ n)` for
/// `k = 1..=max_k` at a fixed clique size.
pub fn e1_clique_tail(scale: Scale) -> Vec<(usize, f64)> {
    let n = match scale {
        Scale::Quick => 64,
        Scale::Full => 256,
    };
    let trials = scale.trials(400);
    let result = run_experiment(&spec(
        "e1-clique-tail",
        GraphSpec::Complete { n },
        "two-state",
        trials,
        200,
    ));
    let log_n = (n as f64).log2();
    (1..=6)
        .map(|k| {
            let threshold = k as f64 * log_n;
            let exceeded = result
                .trials
                .iter()
                .filter(|t| t.rounds as f64 >= threshold)
                .count();
            (k, exceeded as f64 / result.trials.len() as f64)
        })
        .collect()
}

/// E2 — Remark 9: on `√n` disjoint cliques `K_{√n}` the 2-state process needs
/// `Θ(log² n)` rounds (the slowest clique dominates).
pub fn e2_disjoint_cliques(scale: Scale) -> ScalingReport {
    let sides = scale.sizes(&[8, 12, 16], &[8, 16, 24, 32, 48, 64]);
    let trials = scale.trials(48);
    let table = run_sweep(sides.into_iter().map(|side| {
        let n = side * side;
        (
            n as f64,
            spec(
                "e2-disjoint-cliques",
                GraphSpec::DisjointCliques {
                    count: side,
                    size: side,
                },
                "two-state",
                trials,
                300,
            ),
        )
    }));
    ScalingReport::from_table(table)
}

/// E3 — Theorem 11: on bounded-arboricity graphs (random trees here) the
/// 2-state process stabilizes in `O(log n)` rounds w.h.p.
pub fn e3_trees(scale: Scale) -> ScalingReport {
    let sizes = scale.sizes(&[64, 128, 256], &[128, 256, 512, 1024, 2048, 4096, 8192]);
    let trials = scale.trials(48);
    let table = run_sweep(sizes.into_iter().map(|n| {
        (
            n as f64,
            spec(
                "e3-trees",
                GraphSpec::RandomTree { n },
                "two-state",
                trials,
                400,
            ),
        )
    }));
    ScalingReport::from_table(table)
}

/// E3 (variant) — other bounded-arboricity families: paths, stars, and unions
/// of `k` random forests, all at a fixed `n`, to show the bound does not
/// depend on the specific family.
pub fn e3_bounded_arboricity_families(scale: Scale) -> SweepTable {
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 2048,
    };
    let trials = scale.trials(48);
    let specs = vec![
        (1.0, GraphSpec::Path { n }),
        (2.0, GraphSpec::Cycle { n }),
        (3.0, GraphSpec::Star { n }),
        (4.0, GraphSpec::RandomTree { n }),
        (5.0, GraphSpec::ForestUnion { n, forests: 3 }),
        (
            6.0,
            GraphSpec::Grid {
                rows: (n as f64).sqrt() as usize,
                cols: (n as f64).sqrt() as usize,
            },
        ),
    ];
    run_sweep(
        specs
            .into_iter()
            .map(|(idx, graph)| (idx, spec("e3-families", graph, "two-state", trials, 450))),
    )
}

/// E4 — Theorem 12: on `d`-regular graphs the stabilization time is
/// `O(Δ log n)`; the sweep is over the degree `d` at fixed `n`, and the
/// report's exponents are computed over `d` instead of `n` (a slope ≤ 1 in
/// the power exponent confirms at-most-linear growth in Δ).
pub fn e4_max_degree(scale: Scale) -> ScalingReport {
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 512,
    };
    let degrees = scale.sizes(&[4, 8, 16], &[4, 8, 16, 32, 64]);
    let trials = scale.trials(48);
    let table = run_sweep(degrees.into_iter().map(|d| {
        (
            d as f64,
            spec(
                "e4-regular",
                GraphSpec::Regular { n, d },
                "two-state",
                trials,
                500,
            ),
        )
    }));
    ScalingReport::from_table(table)
}

/// E5 — Theorem 2 / Theorem 19: the 2-state process on `G(n,p)` with
/// `p ≈ √(log n / n)` (the hardest density the theorem covers) stabilizes in
/// polylog rounds.
pub fn e5_gnp_two_state(scale: Scale) -> ScalingReport {
    let sizes = scale.sizes(&[128, 256, 512], &[256, 512, 1024, 2048, 4096]);
    let trials = scale.trials(32);
    let table = run_sweep(sizes.into_iter().map(|n| {
        let p = ((n as f64).ln() / n as f64).sqrt();
        (
            n as f64,
            spec("e5-gnp", GraphSpec::Gnp { n, p }, "two-state", trials, 600),
        )
    }));
    ScalingReport::from_table(table)
}

/// E5 (density sweep) — the 2-state process across densities at fixed `n`,
/// covering both regimes of Theorem 2 (`p` small and `p` constant) plus the
/// intermediate regime the theorem leaves open.
pub fn e5_gnp_density_sweep(scale: Scale) -> SweepTable {
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 1024,
    };
    let trials = scale.trials(32);
    let densities: Vec<f64> = match scale {
        Scale::Quick => vec![0.01, 0.1, 0.5],
        Scale::Full => vec![0.002, 0.01, 0.03, 0.1, 0.25, 0.5, 0.8],
    };
    run_sweep(densities.into_iter().map(|p| {
        (
            p,
            spec(
                "e5-density",
                GraphSpec::Gnp { n, p },
                "two-state",
                trials,
                650,
            ),
        )
    }))
}

/// E6 — Theorem 3 / Theorem 32: the 3-color process (18 states) stabilizes in
/// polylog rounds on `G(n,p)` for the **whole** density range, including the
/// `p ≈ n^{-1/4}` regime not covered by the 2-state analysis.
pub fn e6_gnp_three_color(scale: Scale) -> ScalingReport {
    let sizes = scale.sizes(&[128, 256, 512], &[256, 512, 1024, 2048, 4096]);
    let trials = scale.trials(32);
    let table = run_sweep(sizes.into_iter().map(|n| {
        let p = (n as f64).powf(-0.25);
        (
            n as f64,
            spec(
                "e6-gnp-3color",
                GraphSpec::Gnp { n, p },
                "three-color",
                trials,
                700,
            ),
        )
    }));
    ScalingReport::from_table(table)
}

/// E6 (density sweep) — 2-state vs 3-color across the full density range at a
/// fixed `n`: the shape comparison behind Theorem 3's motivation.
pub fn e6_density_comparison(scale: Scale) -> SweepTable {
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 1024,
    };
    let trials = scale.trials(24);
    let densities: Vec<f64> = match scale {
        Scale::Quick => vec![0.05, 0.3],
        Scale::Full => vec![0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8],
    };
    let mut points = Vec::new();
    for p in densities {
        points.push((
            p,
            spec(
                "e6-cmp-2state",
                GraphSpec::Gnp { n, p },
                "two-state",
                trials,
                720,
            ),
        ));
        points.push((
            p,
            spec(
                "e6-cmp-3color",
                GraphSpec::Gnp { n, p },
                "three-color",
                trials,
                730,
            ),
        ));
    }
    run_sweep(points)
}

/// E9 — Remark 10: the 3-state process stabilizes in `O(log n)` rounds on
/// `K_n`, a full log-factor faster than the 2-state process's `Θ(log² n)`.
pub fn e9_three_state_clique(scale: Scale) -> (ScalingReport, ScalingReport) {
    let sizes = scale.sizes(&[32, 64, 128], &[64, 128, 256, 512, 1024, 2048]);
    let trials = scale.trials(64);
    let two = run_sweep(sizes.iter().map(|&n| {
        (
            n as f64,
            spec(
                "e9-2state",
                GraphSpec::Complete { n },
                "two-state",
                trials,
                800,
            ),
        )
    }));
    let three = run_sweep(sizes.iter().map(|&n| {
        (
            n as f64,
            spec(
                "e9-3state",
                GraphSpec::Complete { n },
                "three-state",
                trials,
                810,
            ),
        )
    }));
    (
        ScalingReport::from_table(two),
        ScalingReport::from_table(three),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_runs_and_everything_stabilizes() {
        let report = e1_clique(Scale::Quick);
        assert_eq!(report.table.rows.len(), 3);
        assert!(report
            .table
            .rows
            .iter()
            .all(|r| r.stabilized_fraction == 1.0));
        // The clique bound is between log n and log² n: the measured power
        // exponent over n must be far from linear.
        assert!(
            report.power_exponent < 0.5,
            "power exponent {}",
            report.power_exponent
        );
    }

    #[test]
    fn e1_tail_fractions_are_monotone_decreasing() {
        let tail = e1_clique_tail(Scale::Quick);
        assert_eq!(tail.len(), 6);
        for w in tail.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
        assert!(tail[0].1 <= 1.0 && tail[5].1 >= 0.0);
    }

    #[test]
    fn e3_trees_quick_is_fast_and_logarithmic_shaped() {
        let report = e3_trees(Scale::Quick);
        assert!(report
            .table
            .rows
            .iter()
            .all(|r| r.stabilized_fraction == 1.0));
        assert!(
            report.power_exponent < 0.5,
            "power exponent {}",
            report.power_exponent
        );
    }

    #[test]
    fn e4_quick_runs() {
        let report = e4_max_degree(Scale::Quick);
        assert_eq!(report.table.rows.len(), 3);
        assert!(report
            .table
            .rows
            .iter()
            .all(|r| r.stabilized_fraction == 1.0));
    }

    #[test]
    fn e9_three_state_is_not_slower_than_two_state_on_cliques() {
        let (two, three) = e9_three_state_clique(Scale::Quick);
        let mean_two: f64 =
            two.table.rows.iter().map(|r| r.rounds.mean).sum::<f64>() / two.table.rows.len() as f64;
        let mean_three: f64 = three.table.rows.iter().map(|r| r.rounds.mean).sum::<f64>()
            / three.table.rows.len() as f64;
        assert!(
            mean_three <= mean_two * 1.2,
            "3-state ({mean_three:.1}) should not be slower than 2-state ({mean_two:.1}) on cliques"
        );
    }
}
