//! Churn experiment (`exp_churn`): incremental re-stabilization of the
//! live-mutation engine vs a cold restart, on large sparse `G(n, 8/n)`.
//!
//! The live-mutation path exists so that a dynamic graph does not force a
//! from-scratch re-run: after a churn burst, `apply_mutation` delta-updates
//! the black-neighbor counters and seeds the pending frontier with exactly
//! the vertices the burst disturbed, so the process re-stabilizes from its
//! surviving configuration. This experiment quantifies the payoff. For each
//! paper process (2-state, 3-state, 3-color) and each churn fraction `f`:
//!
//! 1. stabilize from a random initial configuration (`initial_rounds`);
//! 2. hit the stabilized process with one Poisson edge-churn burst of
//!    expected volume `f·m` removals plus `f·m` insertions
//!    ([`mis_sim::generate_burst`], the same generator the experiment
//!    runner's `ChurnSpec` path uses);
//! 3. drive the mutated process to re-stabilization and record the extra
//!    rounds (`incremental_rounds`);
//! 4. build a fresh process on the *mutated* graph from a random initial
//!    configuration and record its rounds to stabilization
//!    (`restart_rounds`).
//!
//! The headline claim — and the CI gate — is that after a small burst
//! (`f = 1%`), `incremental_rounds < restart_rounds` for all three
//! processes: local damage heals locally, while a restart pays the full
//! start-up cost again. Larger fractions chart how the advantage degrades
//! as the burst approaches a full topology replacement.

use mis_core::init::InitStrategy;
use mis_core::{AlgorithmConfig, ExecutionMode, RoundStrategy, StepCtx};
use mis_graph::{generators, mis_check};
use mis_sim::spec::ChurnScenario;
use mis_sim::{builtin_registry, generate_burst};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// The three paper processes the experiment compares.
pub const ENGINE_PROCESSES: [&str; 3] = ["two-state", "three-state", "three-color"];

/// The churn fraction the CI gate checks (a "small" burst).
pub const GATE_FRACTION: f64 = 0.01;

/// Round budget per phase; the engine processes stabilize in polylog
/// rounds on sparse `G(n,p)`, so hitting this means something is broken.
const MAX_ROUNDS: usize = 1_000_000;

/// One measurement: one process, one churn fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnRow {
    /// Registry key of the process.
    pub algorithm: String,
    /// Requested churn fraction `f` (expected `f·m` removals + `f·m`
    /// insertions).
    pub fraction: f64,
    /// Vertices of the (static-population) graph.
    pub n: usize,
    /// Edges before the burst.
    pub m: usize,
    /// Edges actually inserted by the burst.
    pub edges_inserted: usize,
    /// Edges actually removed by the burst.
    pub edges_removed: usize,
    /// Rounds to stabilize from the random initial configuration.
    pub initial_rounds: usize,
    /// Extra rounds the mutated process needed to re-stabilize.
    pub incremental_rounds: usize,
    /// Rounds a fresh process needed on the mutated graph.
    pub restart_rounds: usize,
    /// `restart_rounds / max(incremental_rounds, 1)`.
    pub round_speedup: f64,
    /// Whether the incremental path ended on a valid MIS of the mutated
    /// graph (must always hold).
    pub incremental_valid_mis: bool,
}

/// The full report of the churn experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Average degree `d̄` of the sparse `G(n, d̄/n)` family.
    pub avg_degree: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// The churn fraction the gate checks.
    pub gate_fraction: f64,
    /// One row per (process, fraction).
    pub rows: Vec<ChurnRow>,
}

impl ChurnReport {
    /// The rows measured at the gate fraction.
    pub fn gate_rows(&self) -> impl Iterator<Item = &ChurnRow> {
        let gate = self.gate_fraction;
        self.rows
            .iter()
            .filter(move |r| (r.fraction - gate).abs() < 1e-12)
    }

    /// `true` if, at the gate fraction, every process re-stabilized
    /// incrementally in strictly fewer rounds than a cold restart.
    pub fn gate_passes(&self) -> bool {
        let mut saw_any = false;
        for row in self.gate_rows() {
            saw_any = true;
            if row.incremental_rounds >= row.restart_rounds {
                return false;
            }
        }
        saw_any
    }

    /// `true` if every incremental run ended on a valid MIS of its mutated
    /// graph.
    pub fn all_valid(&self) -> bool {
        self.rows.iter().all(|r| r.incremental_valid_mis)
    }

    /// Renders a human-readable fixed-width table.
    pub fn to_pretty(&self) -> String {
        let mut out = format!(
            "{:>12} {:>9} {:>9} {:>7} {:>7} {:>8} {:>12} {:>9} {:>9} {:>6}\n",
            "process",
            "fraction",
            "m",
            "+edges",
            "-edges",
            "initial",
            "incremental",
            "restart",
            "speedup",
            "valid"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>12} {:>9} {:>9} {:>7} {:>7} {:>8} {:>12} {:>9} {:>8.1}x {:>6}\n",
                r.algorithm,
                r.fraction,
                r.m,
                r.edges_inserted,
                r.edges_removed,
                r.initial_rounds,
                r.incremental_rounds,
                r.restart_rounds,
                r.round_speedup,
                if r.incremental_valid_mis {
                    "ok"
                } else {
                    "FAIL"
                },
            ));
        }
        out
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ChurnReport serializes")
    }
}

/// Runs the churn measurement at one graph size for every engine process
/// and every churn fraction.
///
/// # Panics
///
/// Panics if any phase fails to stabilize within 1,000,000 rounds, or if a
/// generated burst is rejected by `apply_mutation` (both indicate a bug).
pub fn churn_measurement(n: usize, avg_degree: f64, fractions: &[f64], seed: u64) -> ChurnReport {
    let registry = builtin_registry();
    // Counter-based parallel generation: at n = 10^6 the graph setup, not
    // the rounds, dominates wall-clock; the keyed per-row streams make the
    // sample independent of the worker-thread count.
    let g = generators::gnp_counter(n, avg_degree / n as f64, seed ^ n as u64);
    let mut rows = Vec::new();
    for key in ENGINE_PROCESSES {
        let factory = registry
            .get(key)
            .unwrap_or_else(|| panic!("registry is missing engine process '{key}'"));
        for (fi, &fraction) in fractions.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (fi as u64) << 8 ^ key.len() as u64 ^ key.as_bytes()[0] as u64,
            );
            let config = AlgorithmConfig {
                init: InitStrategy::Random,
                execution: ExecutionMode::Sequential,
                strategy: RoundStrategy::Auto,
                counter_seed: seed,
            };

            // Phase 1: stabilize from scratch on the pristine graph.
            let mut alg = factory.init(&g, &config, &mut rng);
            while !alg.is_stabilized() && alg.round() < MAX_ROUNDS {
                alg.step(StepCtx::synchronous(&mut rng));
            }
            assert!(alg.is_stabilized(), "{key} did not stabilize initially");
            let initial_rounds = alg.round();

            // Phase 2: one edge-churn burst against the live process.
            let delta = {
                let graph = alg.current_graph().expect("engine process has a graph");
                generate_burst(ChurnScenario::EdgeChurn { fraction }, graph, &mut rng)
            };
            let committed = alg
                .apply_mutation(&delta)
                .expect("edge-churn burst is valid for the live graph");

            // Phase 3: incremental re-stabilization.
            let round_at_burst = alg.round();
            while !alg.is_stabilized() && alg.round() < round_at_burst + MAX_ROUNDS {
                alg.step(StepCtx::synchronous(&mut rng));
            }
            assert!(
                alg.is_stabilized(),
                "{key} did not re-stabilize after churn"
            );
            let incremental_rounds = alg.round() - round_at_burst;
            let mutated = alg
                .current_graph()
                .expect("engine process has a graph")
                .clone();
            let incremental_valid_mis = mis_check::is_mis(&mutated, &alg.black_set());
            drop(alg);

            // Phase 4: cold restart on the mutated graph.
            let mut restart_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCC ^ fi as u64);
            let mut fresh = factory.init(&mutated, &config, &mut restart_rng);
            while !fresh.is_stabilized() && fresh.round() < MAX_ROUNDS {
                fresh.step(StepCtx::synchronous(&mut restart_rng));
            }
            assert!(fresh.is_stabilized(), "{key} restart did not stabilize");
            let restart_rounds = fresh.round();

            rows.push(ChurnRow {
                algorithm: key.to_string(),
                fraction,
                n,
                m: g.m(),
                edges_inserted: committed.inserted.len(),
                edges_removed: committed.removed.len(),
                initial_rounds,
                incremental_rounds,
                restart_rounds,
                round_speedup: restart_rounds as f64 / (incremental_rounds.max(1)) as f64,
                incremental_valid_mis,
            });
        }
    }
    ChurnReport {
        avg_degree,
        seed,
        gate_fraction: GATE_FRACTION,
        rows,
    }
}

/// The `exp_churn` experiment at the given [`Scale`]: sparse `G(n, 8/n)` at
/// `n = 10⁵` with the gate fraction only (quick/CI), or `n = 10⁶` across a
/// fraction sweep (full).
pub fn exp_churn(scale: Scale) -> ChurnReport {
    let (n, fractions): (usize, &[f64]) = match scale {
        Scale::Quick => (100_000, &[GATE_FRACTION]),
        Scale::Full => (1_000_000, &[0.001, GATE_FRACTION, 0.05, 0.2]),
    };
    churn_measurement(n, 8.0, fractions, 20_260)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_measurement_produces_sane_rows() {
        // Tiny size keeps the debug-build test fast; the incremental-vs-
        // restart *gate* is the release binary's job, only the plumbing and
        // the invariants are asserted here.
        let report = churn_measurement(3_000, 6.0, &[GATE_FRACTION, 0.1], 77);
        assert_eq!(report.rows.len(), ENGINE_PROCESSES.len() * 2);
        assert!(report.all_valid(), "{}", report.to_pretty());
        assert_eq!(report.gate_rows().count(), ENGINE_PROCESSES.len());
        for row in &report.rows {
            assert_eq!(row.n, 3_000);
            assert!(row.m > 0);
            assert!(row.initial_rounds > 0);
            assert!(row.restart_rounds > 0);
            assert!(row.edges_inserted + row.edges_removed > 0);
            assert!(row.round_speedup > 0.0);
        }
        let json = report.to_json();
        let back: ChurnReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(report.to_pretty().lines().count(), report.rows.len() + 1);
    }

    #[test]
    fn incremental_beats_restart_even_at_small_scale() {
        // The gate itself (quick scale is n = 10^5, too slow for a debug
        // test): already at n = 20k a 1% burst must heal faster than a
        // restart for every engine process.
        let report = churn_measurement(20_000, 8.0, &[GATE_FRACTION], 20_260);
        assert!(
            report.gate_passes(),
            "incremental >= restart:\n{}",
            report.to_pretty()
        );
    }
}
