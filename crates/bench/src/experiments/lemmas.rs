//! Direct Monte-Carlo checks of the paper's core lemmas: Lemma 6 (E12) and
//! the realizability of the processes in the weak communication models (E13).

use mis_comm::beeping::BeepingTwoStateMis;
use mis_comm::stone_age::{StoneAgeThreeColorMis, StoneAgeThreeStateMis};
use mis_core::init::InitStrategy;
use mis_core::{
    Color, Process, RandomizedLogSwitch, ThreeColorProcess, ThreeStateProcess, TwoStateProcess,
    DEFAULT_ZETA,
};
use mis_graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// One row of the E12 table: the empirical probability that a `k`-active
/// vertex becomes stable black within `⌈log₂(k+1)⌉` rounds, next to Lemma 6's
/// lower bound `1/(2ek)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lemma6Row {
    /// Number of active neighbors `k` of the tested vertex.
    pub k: usize,
    /// Empirical probability over the Monte-Carlo trials.
    pub empirical: f64,
    /// Lemma 6's lower bound `1/(2ek)`.
    pub lower_bound: f64,
    /// Number of Monte-Carlo trials.
    pub trials: usize,
}

/// E12 — Lemma 6: if a vertex is active with `k` active neighbors, it becomes
/// stable black within `⌈log(k+1)⌉` rounds with probability at least
/// `1/(2ek)`.
///
/// The construction uses the star `K_{1,k}` with every vertex initially
/// black: the hub is active with exactly `k` active neighbors, so the lemma
/// applies to it verbatim.
pub fn e12_lemma6(scale: Scale) -> Vec<Lemma6Row> {
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![1, 4, 16],
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 64, 128],
    };
    let trials = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 20_000,
    };
    ks.into_iter()
        .map(|k| {
            let g = generators::star(k + 1);
            let horizon = ((k + 1) as f64).log2().ceil() as usize;
            let mut successes = 0usize;
            for t in 0..trials {
                let mut rng = ChaCha8Rng::seed_from_u64(31_000 ^ ((k as u64) << 20) ^ t as u64);
                let mut proc = TwoStateProcess::new(&g, vec![Color::Black; k + 1]);
                for _ in 0..horizon {
                    proc.step(&mut rng);
                }
                if proc.is_stable_black(0) {
                    successes += 1;
                }
            }
            Lemma6Row {
                k,
                empirical: successes as f64 / trials as f64,
                lower_bound: 1.0 / (2.0 * std::f64::consts::E * k as f64),
                trials,
            }
        })
        .collect()
}

/// Renders the E12 rows as CSV.
pub fn lemma6_csv(rows: &[Lemma6Row]) -> String {
    let mut out = String::from("k,empirical,lower_bound,trials\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{}\n",
            r.k, r.empirical, r.lower_bound, r.trials
        ));
    }
    out
}

/// One row of the E13 table: a graph and seed on which the message-passing
/// adaptation was co-simulated against the direct process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommEquivalenceRow {
    /// Which adaptation was tested ("beeping-2state", "stoneage-3state",
    /// "stoneage-3color").
    pub adaptation: String,
    /// Graph family label.
    pub graph: String,
    /// Number of rounds co-simulated until both stabilized.
    pub rounds: usize,
    /// Whether the two executions visited identical state sequences.
    pub traces_identical: bool,
    /// Whether the final black set was a valid MIS.
    pub valid_mis: bool,
}

/// E13 — realizability in the weak communication models: co-simulates each
/// message-passing adaptation against its direct process (same seed, same
/// initial states) and reports whether the traces are identical.
pub fn e13_comm_models(scale: Scale) -> Vec<CommEquivalenceRow> {
    let n = match scale {
        Scale::Quick => 60,
        Scale::Full => 300,
    };
    let seeds: Vec<u64> = match scale {
        Scale::Quick => vec![1],
        Scale::Full => vec![1, 2, 3, 4, 5],
    };
    let mut rows = Vec::new();
    for &seed in &seeds {
        let mut setup = ChaCha8Rng::seed_from_u64(40_000 + seed);
        let graphs = vec![
            (
                "gnp-sparse".to_string(),
                generators::gnp(n, 8.0 / n as f64, &mut setup),
            ),
            ("gnp-dense".to_string(), generators::gnp(n, 0.3, &mut setup)),
            ("tree".to_string(), generators::random_tree(n, &mut setup)),
        ];
        for (label, g) in graphs {
            // Beeping / 2-state.
            let init = InitStrategy::Random.two_state(g.n(), &mut setup);
            let mut direct = TwoStateProcess::new(&g, init.clone());
            let mut net = BeepingTwoStateMis::new(&g, init);
            let (rounds, identical) = co_simulate(
                &mut direct,
                &mut net,
                seed,
                |a: &TwoStateProcess<'_>, b: &BeepingTwoStateMis<'_>| a.states() == b.states(),
            );
            rows.push(CommEquivalenceRow {
                adaptation: "beeping-2state".into(),
                graph: label.clone(),
                rounds,
                traces_identical: identical,
                valid_mis: mis_graph::mis_check::is_mis(&g, &net.black_set()),
            });

            // Stone age / 3-state.
            let init = InitStrategy::Random.three_state(g.n(), &mut setup);
            let mut direct = ThreeStateProcess::new(&g, init.clone());
            let mut net = StoneAgeThreeStateMis::new(&g, init);
            let (rounds, identical) = co_simulate(
                &mut direct,
                &mut net,
                seed,
                |a: &ThreeStateProcess<'_>, b: &StoneAgeThreeStateMis<'_>| a.states() == b.states(),
            );
            rows.push(CommEquivalenceRow {
                adaptation: "stoneage-3state".into(),
                graph: label.clone(),
                rounds,
                traces_identical: identical,
                valid_mis: mis_graph::mis_check::is_mis(&g, &net.black_set()),
            });

            // Stone age / 3-color.
            let colors = InitStrategy::Random.three_color(g.n(), &mut setup);
            let levels = InitStrategy::Random.switch_levels(g.n(), &mut setup);
            let switch = RandomizedLogSwitch::new(&g, levels.clone(), DEFAULT_ZETA);
            let mut direct = ThreeColorProcess::new(&g, colors.clone(), switch);
            let mut net = StoneAgeThreeColorMis::new(&g, colors, levels);
            let (rounds, identical) = co_simulate(
                &mut direct,
                &mut net,
                seed,
                |a: &ThreeColorProcess<'_, RandomizedLogSwitch<'_>>,
                 b: &StoneAgeThreeColorMis<'_>| { a.colors() == b.colors() },
            );
            rows.push(CommEquivalenceRow {
                adaptation: "stoneage-3color".into(),
                graph: label.clone(),
                rounds,
                traces_identical: identical,
                valid_mis: mis_graph::mis_check::is_mis(&g, &net.black_set()),
            });
        }
    }
    rows
}

/// Steps both processes with identical RNG streams until both stabilize (or a
/// large cap), checking state equality each round.
fn co_simulate<A: Process, B: Process>(
    a: &mut A,
    b: &mut B,
    seed: u64,
    states_equal: impl Fn(&A, &B) -> bool,
) -> (usize, bool) {
    let mut rng_a = ChaCha8Rng::seed_from_u64(50_000 + seed);
    let mut rng_b = ChaCha8Rng::seed_from_u64(50_000 + seed);
    let mut identical = true;
    let cap = 1_000_000;
    while !(a.is_stabilized() && b.is_stabilized()) && a.round() < cap {
        if !states_equal(a, b) {
            identical = false;
            break;
        }
        a.step(&mut rng_a);
        b.step(&mut rng_b);
    }
    identical = identical && states_equal(a, b);
    (a.round(), identical)
}

/// E13 (harness section) — runs the three communication-model adaptations
/// end-to-end through `run_experiment` via their registry keys
/// (`beeping-two-state`, `stone-age-three-state`, `stone-age-three-color`),
/// on a sparse `G(n,p)` and a clique: the same registry/scheduler/observer
/// code path that drives every other algorithm of the workspace.
pub fn e13_registry_harness(scale: Scale) -> mis_sim::sweep::SweepTable {
    use mis_sim::runner::run_experiment;
    use mis_sim::spec::{ExperimentSpec, GraphSpec};
    use mis_sim::sweep::row_from_result;

    let n = match scale {
        Scale::Quick => 60,
        Scale::Full => 300,
    };
    let trials = scale.trials(16);
    let mut rows = Vec::new();
    for key in [
        "beeping-two-state",
        "stone-age-three-state",
        "stone-age-three-color",
    ] {
        for graph in [
            GraphSpec::Gnp {
                n,
                p: 8.0 / n as f64,
            },
            GraphSpec::Complete { n: n / 4 },
        ] {
            let spec = ExperimentSpec::builder()
                .name(format!("e13-{key}"))
                .graph(graph)
                .algorithm(key)
                .init(InitStrategy::Random)
                .trials(trials)
                .max_rounds(1_000_000)
                .base_seed(41_000)
                .build();
            let result = run_experiment(&spec);
            assert!(
                result.all_stabilized() && result.all_valid(),
                "{key} failed through the registry harness"
            );
            rows.push(row_from_result(graph.n() as f64, &result));
        }
    }
    mis_sim::sweep::SweepTable { rows }
}

/// Renders the E13 rows as CSV.
pub fn comm_csv(rows: &[CommEquivalenceRow]) -> String {
    let mut out = String::from("adaptation,graph,rounds,traces_identical,valid_mis\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            r.adaptation, r.graph, r.rounds, r.traces_identical, r.valid_mis
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_empirical_probability_respects_lemma6_lower_bound() {
        let rows = e12_lemma6(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.empirical >= r.lower_bound,
                "k = {}: empirical {:.4} below the Lemma 6 bound {:.4}",
                r.k,
                r.empirical,
                r.lower_bound
            );
            assert!(r.empirical <= 1.0);
        }
        assert_eq!(lemma6_csv(&rows).lines().count(), 4);
    }

    #[test]
    fn e13_all_adaptations_are_trace_equivalent() {
        let rows = e13_comm_models(Scale::Quick);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.traces_identical,
                "{} on {} diverged",
                r.adaptation, r.graph
            );
            assert!(
                r.valid_mis,
                "{} on {} did not reach an MIS",
                r.adaptation, r.graph
            );
        }
        assert_eq!(comm_csv(&rows).lines().count(), 10);
    }
}
