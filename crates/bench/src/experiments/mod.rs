//! One module per experiment group; see `EXPERIMENTS.md` for the index.
//!
//! * [`stabilization`] — stabilization-time scaling experiments
//!   (E1–E6, E9): each theorem's graph family, swept over `n` (or `p` or
//!   `Δ`), with a fitted growth exponent next to the claimed bound.
//! * [`structure`] — structural lemmas: the (n,p)-good graph checker on
//!   `G(n,p)` (E7) and the logarithmic-switch run-length properties (E8).
//! * [`comparison`] — baselines and robustness: resource comparison against
//!   Luby and the randomized self-stabilizing baseline (E10) and
//!   transient-fault recovery (E11).
//! * [`lemmas`] — direct Monte-Carlo checks of Lemma 6 (E12) and the
//!   trace-equivalence of the weak-communication adaptations (E13).
//! * [`scale`] — large-n round-throughput measurement of the incremental
//!   frontier engine against the naive full-scan reference, early phase vs
//!   late phase, on sparse `G(n, p)` up to `n = 10⁶`.
//! * [`churn`] — dynamic graphs: incremental re-stabilization through the
//!   live-mutation engine vs a cold restart after edge-churn bursts, for
//!   all three paper processes.
//! * [`byzantine`] — adversarial robustness: containment of Byzantine
//!   vertices (frozen/flipper/oscillator/spoofer adversaries) within the
//!   2-neighborhood of the Byzantine set, for all three paper processes.

pub mod ablation;
pub mod byzantine;
pub mod churn;
pub mod comparison;
pub mod lemmas;
pub mod scale;
pub mod stabilization;
pub mod structure;

pub use ablation::{ablation_init_strategy, ablation_switch_implementation, ablation_switch_zeta};
pub use byzantine::{byzantine_measurement, exp_byzantine, ByzantineReport};
pub use churn::{churn_measurement, exp_churn, ChurnReport};
pub use comparison::{e10_baselines, e11_fault_recovery};
pub use lemmas::{e12_lemma6, e13_comm_models};
pub use scale::{exp_scale, scale_measurement, ScaleReport};
pub use stabilization::{
    e1_clique, e2_disjoint_cliques, e3_trees, e4_max_degree, e5_gnp_two_state, e6_gnp_three_color,
    e9_three_state_clique, ScalingReport,
};
pub use structure::{e7_good_graphs, e8_log_switch};
