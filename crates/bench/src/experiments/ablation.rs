//! Ablation experiments for the design choices called out in `DESIGN.md`:
//! the switch probability `ζ`, the switch implementation (randomized vs
//! deterministic oracle), and the initial-state strategy.

use mis_core::init::InitStrategy;
use mis_core::{
    FixedPeriodSwitch, Process, RandomizedLogSwitch, ThreeColorProcess, TwoStateProcess,
};
use mis_graph::generators;
use mis_sim::stats::Summary;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// One row of an ablation table: a configuration label and the stabilization
/// statistics measured for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which knob was varied and to what value.
    pub configuration: String,
    /// Stabilization-time summary over the trials.
    pub rounds: Summary,
    /// Fraction of trials that stabilized within the budget (must be 1.0).
    pub stabilized_fraction: f64,
}

/// Renders ablation rows as CSV.
pub fn ablation_csv(rows: &[AblationRow]) -> String {
    let mut out =
        String::from("configuration,rounds_mean,rounds_median,rounds_p90,stabilized_fraction\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.1},{:.1},{:.1},{:.3}\n",
            r.configuration, r.rounds.mean, r.rounds.median, r.rounds.p90, r.stabilized_fraction
        ));
    }
    out
}

fn run_three_color_with_zeta(
    n: usize,
    p: f64,
    zeta: f64,
    trials: usize,
    base_seed: u64,
) -> AblationRow {
    let mut rounds = Vec::new();
    let mut stabilized = 0usize;
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(base_seed + t as u64);
        let g = generators::gnp(n, p, &mut rng);
        let colors = InitStrategy::Random.three_color(g.n(), &mut rng);
        let switch = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, zeta, &mut rng);
        let mut proc = ThreeColorProcess::new(&g, colors, switch);
        match proc.run_to_stabilization(&mut rng, 2_000_000) {
            Ok(r) => {
                rounds.push(r);
                stabilized += 1;
            }
            Err(e) => rounds.push(e.rounds_executed),
        }
    }
    AblationRow {
        configuration: format!("three-color zeta=1/{}", (1.0 / zeta).round() as u64),
        rounds: Summary::from_counts(rounds),
        stabilized_fraction: stabilized as f64 / trials as f64,
    }
}

/// Ablation A1 — the switch probability `ζ`: the paper fixes `ζ = 2⁻⁷`
/// (`a = 512`); smaller `a` (larger `ζ`) shortens the gray waiting period and
/// the absolute stabilization time, at the cost of the (S2) guarantee holding
/// only for smaller graphs. Measured on `G(n, 0.3)`.
pub fn ablation_switch_zeta(scale: Scale) -> Vec<AblationRow> {
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 512,
    };
    let trials = scale.trials(24);
    [1.0 / 8.0, 1.0 / 32.0, 1.0 / 128.0]
        .into_iter()
        .map(|zeta| run_three_color_with_zeta(n, 0.3, zeta, trials, 61_000))
        .collect()
}

/// Ablation A2 — the switch implementation: the randomized logarithmic switch
/// versus a deterministic oracle switch with the same nominal period
/// (`on = 3`, `off = (a/6)·ln n` with `a = 512`). The oracle removes the
/// switch's randomness entirely and isolates how much of the 3-color
/// process's cost comes from the gray waiting period itself.
pub fn ablation_switch_implementation(scale: Scale) -> Vec<AblationRow> {
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 512,
    };
    let trials = scale.trials(24);
    let p = 0.3;
    let mut rows = vec![run_three_color_with_zeta(n, p, 1.0 / 128.0, trials, 62_000)];

    let mut rounds = Vec::new();
    let mut stabilized = 0usize;
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(63_000 + t as u64);
        let g = generators::gnp(n, p, &mut rng);
        let colors = InitStrategy::Random.three_color(g.n(), &mut rng);
        let off = ((512.0 / 6.0) * (n as f64).ln()).ceil() as usize;
        let switch = FixedPeriodSwitch::new(g.n(), 3, off);
        let mut proc = ThreeColorProcess::new(&g, colors, switch);
        match proc.run_to_stabilization(&mut rng, 2_000_000) {
            Ok(r) => {
                rounds.push(r);
                stabilized += 1;
            }
            Err(e) => rounds.push(e.rounds_executed),
        }
    }
    rows.push(AblationRow {
        configuration: "three-color oracle-switch(on=3, off=(a/6)ln n)".into(),
        rounds: Summary::from_counts(rounds),
        stabilized_fraction: stabilized as f64 / trials as f64,
    });
    rows
}

/// Ablation A3 — the initial-state strategy: self-stabilization means the
/// stabilization time should be comparable from every initialization,
/// including the adversarial-looking all-black configuration. Measured for
/// the 2-state process on `G(n, 8/n)`.
pub fn ablation_init_strategy(scale: Scale) -> Vec<AblationRow> {
    let n = match scale {
        Scale::Quick => 200,
        Scale::Full => 1000,
    };
    let trials = scale.trials(32);
    [
        InitStrategy::AllWhite,
        InitStrategy::AllBlack,
        InitStrategy::Random,
        InitStrategy::Alternating,
    ]
    .into_iter()
    .map(|init| {
        let mut rounds = Vec::new();
        let mut stabilized = 0usize;
        for t in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(64_000 + t as u64);
            let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
            let mut proc = TwoStateProcess::with_init(&g, init, &mut rng);
            match proc.run_to_stabilization(&mut rng, 1_000_000) {
                Ok(r) => {
                    rounds.push(r);
                    stabilized += 1;
                }
                Err(e) => rounds.push(e.rounds_executed),
            }
        }
        AblationRow {
            configuration: format!("two-state init={init:?}"),
            rounds: Summary::from_counts(rounds),
            stabilized_fraction: stabilized as f64 / trials as f64,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_ablation_shows_larger_zeta_is_faster() {
        let rows = ablation_switch_zeta(Scale::Quick);
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .all(|r| (r.stabilized_fraction - 1.0).abs() < 1e-9));
        // zeta = 1/8 waits ~8x less at level 5 than zeta = 1/128, so it must
        // stabilize in fewer rounds on average.
        assert!(
            rows[0].rounds.mean < rows[2].rounds.mean,
            "zeta=1/8 ({:.0}) should be faster than zeta=1/128 ({:.0})",
            rows[0].rounds.mean,
            rows[2].rounds.mean
        );
        assert_eq!(ablation_csv(&rows).lines().count(), 4);
    }

    #[test]
    fn switch_implementation_ablation_stabilizes_with_both_switches() {
        let rows = ablation_switch_implementation(Scale::Quick);
        assert_eq!(rows.len(), 2);
        assert!(
            rows.iter()
                .all(|r| (r.stabilized_fraction - 1.0).abs() < 1e-9),
            "rows: {rows:?}"
        );
    }

    #[test]
    fn init_strategy_ablation_stabilizes_from_every_initialization() {
        let rows = ablation_init_strategy(Scale::Quick);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                (r.stabilized_fraction - 1.0).abs() < 1e-9,
                "{}",
                r.configuration
            );
            assert!(r.rounds.mean >= 1.0);
        }
    }
}
