//! Structural experiments: the good-graph checker on `G(n,p)` (E7) and the
//! logarithmic-switch run-length properties (E8).

use mis_core::init::InitStrategy;
use mis_core::{RandomizedLogSwitch, SwitchProcess};
use mis_graph::{generators, properties};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// One row of the E7 table: a `(n, p)` point and whether the sampled
/// `G(n,p)` graph passed every good-graph property of Definition 17.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoodGraphRow {
    /// Number of vertices.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
    /// Whether all checked properties held.
    pub is_good: bool,
    /// Largest common-neighborhood size found (property P5's statistic).
    pub max_common_neighbors: usize,
    /// The P5 bound `max(6 n p², 4 ln n)` the statistic is compared against.
    pub p5_bound: f64,
    /// Whether the diameter-2 property (P6) was applicable at this density.
    pub p6_checked: bool,
}

/// E7 — Lemma 18: a `G(n,p)` random graph satisfies the (n,p)-good properties
/// w.h.p. Samples one graph per `(n, p)` point and runs the (partially
/// sampled) checker.
pub fn e7_good_graphs(scale: Scale) -> Vec<GoodGraphRow> {
    let points: Vec<(usize, f64)> = match scale {
        Scale::Quick => vec![(200, 0.05), (200, 0.4)],
        Scale::Full => vec![
            (500, 0.01),
            (500, 0.05),
            (500, 0.2),
            (500, 0.5),
            (1500, 0.01),
            (1500, 0.05),
            (1500, 0.3),
        ],
    };
    let samples = match scale {
        Scale::Quick => 50,
        Scale::Full => 300,
    };
    points
        .into_iter()
        .map(|(n, p)| {
            let mut rng = ChaCha8Rng::seed_from_u64(9000 + n as u64 + (p * 1000.0) as u64);
            let g = generators::gnp(n, p, &mut rng);
            let report = properties::check_good(
                &g,
                properties::GoodGraphConfig {
                    samples_per_property: samples,
                    p,
                },
                &mut rng,
            );
            GoodGraphRow {
                n,
                p,
                is_good: report.is_good(),
                max_common_neighbors: report.max_common_neighbors,
                p5_bound: (6.0 * n as f64 * p * p).max(4.0 * (n as f64).ln()),
                p6_checked: report.p6_diameter.checks > 0,
            }
        })
        .collect()
}

/// One row of the E8 table: run-length statistics of the randomized
/// logarithmic switch on one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchRow {
    /// Graph family label.
    pub graph: String,
    /// Number of vertices.
    pub n: usize,
    /// Whether the graph has diameter at most 2 (so (S2)/(S3) apply).
    pub diameter_at_most_2: bool,
    /// Longest observed run of consecutive `off` values (property S1's statistic).
    pub max_off_run: usize,
    /// The S1 bound `a ln n` with `a = 4/ζ`.
    pub s1_bound: f64,
    /// Shortest observed `off` run after the warm-up (S2's statistic;
    /// meaningful only when `diameter_at_most_2`).
    pub min_off_run_after_sync: usize,
    /// The S2 bound `(a/6) ln n`.
    pub s2_bound: f64,
    /// Longest observed `on` run after the warm-up (S3's statistic; bound is 3).
    pub max_on_run_after_sync: usize,
}

/// E8 — Lemma 27: the randomized logarithmic switch satisfies (S1) on every
/// graph and (S2)/(S3) on diameter-2 graphs. Measures run lengths of vertex 0
/// over a long execution on a clique (diameter 1), a dense `G(n,p)`
/// (diameter 2 w.h.p.), and a path (large diameter, only S1 applies).
pub fn e8_log_switch(scale: Scale) -> Vec<SwitchRow> {
    let (n, rounds) = match scale {
        Scale::Quick => (64, 4_000),
        Scale::Full => (256, 40_000),
    };
    let zeta = 1.0 / 16.0; // a = 64; keeps run lengths short enough to sample many runs
    let a = 4.0 / zeta;
    let mut rng = ChaCha8Rng::seed_from_u64(8800);

    let graphs = vec![
        ("complete".to_string(), generators::complete(n)),
        ("gnp-dense".to_string(), generators::gnp(n, 0.5, &mut rng)),
        ("path".to_string(), generators::path(n)),
    ];

    graphs
        .into_iter()
        .map(|(label, g)| {
            let diam2 = properties::has_diameter_at_most_2(&g);
            let mut sw = RandomizedLogSwitch::with_init(&g, InitStrategy::Random, zeta, &mut rng);
            // Warm-up past the constant synchronization prefix.
            let warmup = 50;
            let mut max_off_total = 0usize;
            let mut min_off_after = usize::MAX;
            let mut max_on_after = 0usize;
            let mut current_on = sw.is_on(0);
            let mut len = 1usize;
            let mut completed_off_runs_after = 0usize;
            for t in 0..rounds {
                sw.step(&mut rng);
                let now_on = sw.is_on(0);
                if now_on == current_on {
                    len += 1;
                } else {
                    if current_on {
                        if t >= warmup {
                            max_on_after = max_on_after.max(len);
                        }
                    } else {
                        max_off_total = max_off_total.max(len);
                        if t >= warmup {
                            // Skip the first completed off-run after warm-up:
                            // it may have started during the warm-up.
                            if completed_off_runs_after > 0 {
                                min_off_after = min_off_after.min(len);
                            }
                            completed_off_runs_after += 1;
                        }
                    }
                    current_on = now_on;
                    len = 1;
                }
            }
            SwitchRow {
                graph: label,
                n: g.n(),
                diameter_at_most_2: diam2,
                max_off_run: max_off_total,
                s1_bound: a * (g.n() as f64).ln(),
                min_off_run_after_sync: if min_off_after == usize::MAX {
                    0
                } else {
                    min_off_after
                },
                s2_bound: a / 6.0 * (g.n() as f64).ln(),
                max_on_run_after_sync: max_on_after,
            }
        })
        .collect()
}

/// Renders the E7 rows as CSV.
pub fn good_graph_csv(rows: &[GoodGraphRow]) -> String {
    let mut out = String::from("n,p,is_good,max_common_neighbors,p5_bound,p6_checked\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.1},{}\n",
            r.n, r.p, r.is_good, r.max_common_neighbors, r.p5_bound, r.p6_checked
        ));
    }
    out
}

/// Renders the E8 rows as CSV.
pub fn switch_csv(rows: &[SwitchRow]) -> String {
    let mut out = String::from(
        "graph,n,diam_le_2,max_off_run,s1_bound,min_off_run_after_sync,s2_bound,max_on_run_after_sync\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.1},{},{:.1},{}\n",
            r.graph,
            r.n,
            r.diameter_at_most_2,
            r.max_off_run,
            r.s1_bound,
            r.min_off_run_after_sync,
            r.s2_bound,
            r.max_on_run_after_sync
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_quick_gnp_graphs_are_good() {
        let rows = e7_good_graphs(Scale::Quick);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.is_good), "rows: {rows:?}");
        // The dense point must exercise the diameter property.
        assert!(rows.iter().any(|r| r.p6_checked));
        let csv = good_graph_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn e8_switch_respects_s1_everywhere_and_s3_on_diameter_two() {
        let rows = e8_log_switch(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                (row.max_off_run as f64) <= row.s1_bound + 6.0,
                "{}: S1 violated ({} > {})",
                row.graph,
                row.max_off_run,
                row.s1_bound
            );
            if row.diameter_at_most_2 {
                assert!(row.max_on_run_after_sync <= 3, "{}: S3 violated", row.graph);
                // S2 is an asymptotic w.h.p. bound; at n = 64 the minimum
                // observed off-run fluctuates to ~0.8x the bound across RNG
                // seeds, so allow constant-factor slack rather than an
                // absolute one.
                assert!(
                    row.min_off_run_after_sync as f64 >= 0.75 * row.s2_bound,
                    "{}: S2 violated ({} < 0.75 * {})",
                    row.graph,
                    row.min_off_run_after_sync,
                    row.s2_bound
                );
            }
        }
        // The clique and the dense G(n,p) must have diameter ≤ 2; the path must not.
        assert!(rows[0].diameter_at_most_2);
        assert!(!rows[2].diameter_at_most_2);
        let csv = switch_csv(&rows);
        assert_eq!(csv.lines().count(), 4);
    }
}
