//! Comparison and robustness experiments: baselines (E10) and
//! transient-fault recovery (E11).

use mis_core::init::InitStrategy;
use mis_sim::fault::{three_color_recovery, two_state_recovery};
use mis_sim::runner::run_experiment;
use mis_sim::spec::{ExecutionMode, ExperimentSpec, GraphSpec};
use mis_sim::stats::Summary;
use serde::{Deserialize, Serialize};

use crate::Scale;

/// One row of the E10 comparison table: one algorithm on one graph family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Graph family label.
    pub graph: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Whether the algorithm is self-stabilizing (starts from arbitrary states).
    pub self_stabilizing: bool,
    /// States per vertex (`usize::MAX` rendered as "unbounded" for Luby,
    /// whose per-round messages are fresh `Θ(log n)`-bit values).
    pub states_per_vertex: usize,
    /// Summary of rounds to completion / stabilization.
    pub rounds: Summary,
    /// Summary of total random bits consumed.
    pub random_bits: Summary,
    /// Summary of the produced MIS sizes.
    pub mis_size: Summary,
}

/// E10 — resource comparison of the paper's processes against Luby's
/// algorithm and the random-priority self-stabilizing baseline, on a sparse
/// `G(n,p)`, a random tree, and a clique.
///
/// The headline the experiment reproduces: the paper's processes pay a
/// polylog-factor more rounds than Luby but use only 2–18 states and ~1
/// random bit per active vertex per round, while remaining self-stabilizing.
pub fn e10_baselines(scale: Scale) -> Vec<BaselineRow> {
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 1024,
    };
    let trials = scale.trials(32);
    let graphs = vec![
        (
            "gnp-sparse".to_string(),
            GraphSpec::Gnp {
                n,
                p: 8.0 / n as f64,
            },
        ),
        ("tree".to_string(), GraphSpec::RandomTree { n }),
        ("complete".to_string(), GraphSpec::Complete { n: n / 4 }),
    ];
    let algorithms = vec![
        ("two-state", true),
        ("three-state", true),
        ("three-color", true),
        ("random-priority", true),
        ("luby", false),
        ("greedy", false),
        ("sequential-selfstab", true),
    ];

    let mut rows = Vec::new();
    for (graph_label, graph) in &graphs {
        for &(algorithm, self_stabilizing) in &algorithms {
            let spec = ExperimentSpec {
                name: format!("e10-{graph_label}-{algorithm}"),
                graph: *graph,
                algorithm: algorithm.to_string(),
                init: InitStrategy::Random,
                execution: ExecutionMode::Sequential,
                trials,
                max_rounds: 1_000_000,
                base_seed: 1000,
                record_trace: false,
                ..ExperimentSpec::default()
            };
            let result = run_experiment(&spec);
            let states = result.trials.first().map_or(0, |t| t.states_per_vertex);
            rows.push(BaselineRow {
                graph: graph_label.clone(),
                algorithm: algorithm.to_string(),
                self_stabilizing,
                states_per_vertex: states,
                rounds: result.rounds_summary(),
                random_bits: result.random_bits_summary(),
                mis_size: result.mis_size_summary(),
            });
        }
    }
    rows
}

/// Renders the E10 rows as CSV.
pub fn baselines_csv(rows: &[BaselineRow]) -> String {
    let mut out = String::from(
        "graph,algorithm,self_stabilizing,states_per_vertex,rounds_mean,rounds_p90,random_bits_mean,mis_size_mean\n",
    );
    for r in rows {
        let states = if r.states_per_vertex == usize::MAX {
            "unbounded".to_string()
        } else {
            r.states_per_vertex.to_string()
        };
        out.push_str(&format!(
            "{},{},{},{},{:.1},{:.1},{:.0},{:.1}\n",
            r.graph,
            r.algorithm,
            r.self_stabilizing,
            states,
            r.rounds.mean,
            r.rounds.p90,
            r.random_bits.mean,
            r.mis_size.mean
        ));
    }
    out
}

/// One row of the E11 fault-recovery table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRow {
    /// Process label ("two-state" or "three-color").
    pub process: String,
    /// Fraction of vertex states corrupted.
    pub fraction: f64,
    /// Summary of rounds needed to stabilize initially.
    pub initial_rounds: Summary,
    /// Summary of rounds needed to re-stabilize after the fault.
    pub recovery_rounds: Summary,
    /// Fraction of trials that recovered to a valid MIS (must be 1.0).
    pub recovered_fraction: f64,
}

/// E11 — self-stabilization under transient faults: stabilize, corrupt a
/// fraction of the states, and measure re-stabilization time. Recovery from
/// a small corruption should be no slower than stabilizing from scratch
/// (and typically much faster).
pub fn e11_fault_recovery(scale: Scale) -> Vec<RecoveryRow> {
    let n = match scale {
        Scale::Quick => 150,
        Scale::Full => 1000,
    };
    let trials = scale.trials(24);
    let fractions = match scale {
        Scale::Quick => vec![0.1, 0.5],
        Scale::Full => vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0],
    };
    let mut rows = Vec::new();
    let mut seed = 2000u64;
    for &fraction in &fractions {
        // 2-state on a sparse G(n,p).
        let mut initial = Vec::new();
        let mut recovery = Vec::new();
        let mut recovered = 0usize;
        for t in 0..trials {
            let mut rng =
                <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed + t as u64);
            let g = mis_graph::generators::gnp(n, 8.0 / n as f64, &mut rng);
            let out = two_state_recovery(
                &g,
                InitStrategy::Random,
                fraction,
                seed + 100 + t as u64,
                1_000_000,
            );
            initial.push(out.initial_rounds);
            recovery.push(out.recovery_rounds);
            recovered += usize::from(out.recovered_to_mis);
        }
        rows.push(RecoveryRow {
            process: "two-state".into(),
            fraction,
            initial_rounds: Summary::from_counts(initial),
            recovery_rounds: Summary::from_counts(recovery),
            recovered_fraction: recovered as f64 / trials as f64,
        });
        seed += 500;

        // 3-color on a denser G(n,p).
        let mut initial = Vec::new();
        let mut recovery = Vec::new();
        let mut recovered = 0usize;
        for t in 0..trials {
            let mut rng =
                <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed + t as u64);
            let g = mis_graph::generators::gnp(n, 0.2, &mut rng);
            let out = three_color_recovery(
                &g,
                InitStrategy::Random,
                fraction,
                seed + 100 + t as u64,
                1_000_000,
            );
            initial.push(out.initial_rounds);
            recovery.push(out.recovery_rounds);
            recovered += usize::from(out.recovered_to_mis);
        }
        rows.push(RecoveryRow {
            process: "three-color".into(),
            fraction,
            initial_rounds: Summary::from_counts(initial),
            recovery_rounds: Summary::from_counts(recovery),
            recovered_fraction: recovered as f64 / trials as f64,
        });
        seed += 500;
    }
    rows
}

/// Renders the E11 rows as CSV.
pub fn recovery_csv(rows: &[RecoveryRow]) -> String {
    let mut out = String::from(
        "process,fraction,initial_rounds_mean,recovery_rounds_mean,recovery_rounds_p90,recovered_fraction\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.1},{:.1},{:.1},{:.3}\n",
            r.process,
            r.fraction,
            r.initial_rounds.mean,
            r.recovery_rounds.mean,
            r.recovery_rounds.p90,
            r.recovered_fraction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_produces_all_rows_and_luby_wins_on_rounds() {
        let rows = e10_baselines(Scale::Quick);
        assert_eq!(rows.len(), 21); // 3 graphs x 7 algorithms
        let csv = baselines_csv(&rows);
        assert_eq!(csv.lines().count(), 22);

        // On the sparse G(n,p), Luby should need no more rounds (on average)
        // than the 2-state process — the "who wins" shape of the comparison.
        let luby = rows
            .iter()
            .find(|r| r.graph == "gnp-sparse" && r.algorithm == "luby")
            .unwrap();
        let two = rows
            .iter()
            .find(|r| r.graph == "gnp-sparse" && r.algorithm == "two-state")
            .unwrap();
        assert!(luby.rounds.mean <= two.rounds.mean);
        // ...but the 2-state process uses only 2 states per vertex.
        assert_eq!(two.states_per_vertex, 2);
        assert!(two.self_stabilizing && !luby.self_stabilizing);
    }

    #[test]
    fn e11_quick_every_trial_recovers() {
        let rows = e11_fault_recovery(Scale::Quick);
        assert_eq!(rows.len(), 4);
        assert!(
            rows.iter()
                .all(|r| (r.recovered_fraction - 1.0).abs() < 1e-9),
            "rows: {rows:?}"
        );
        let csv = recovery_csv(&rows);
        assert_eq!(csv.lines().count(), 5);
    }
}
