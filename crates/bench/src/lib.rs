//! Experiment and benchmark harness.
//!
//! Every experiment listed in `EXPERIMENTS.md` (E1–E13) has a function in
//! [`experiments`] that produces its table, and a thin binary `exp_<id>`
//! under `src/bin/` that runs it and prints/writes the result. Criterion
//! micro-benchmarks for the per-round update cost and full stabilization live
//! under `benches/`.
//!
//! All experiments accept a [`Scale`] so that the full evaluation (paper
//! scale) and a quick smoke-test scale share the same code path; the
//! integration tests run everything at [`Scale::Quick`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod report;

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes and few trials: finishes in seconds, used by tests and CI.
    Quick,
    /// The full evaluation reported in `EXPERIMENTS.md` (minutes).
    Full,
}

impl Scale {
    /// Reads the scale from the command-line arguments of an experiment
    /// binary: `--quick` selects [`Scale::Quick`], anything else (or nothing)
    /// selects [`Scale::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Multiplies a trial count by the scale factor (quick runs use fewer trials).
    pub fn trials(self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 8).max(3),
            Scale::Full => full,
        }
    }

    /// Picks between a quick and a full list of sizes.
    pub fn sizes(self, quick: &[usize], full: &[usize]) -> Vec<usize> {
        match self {
            Scale::Quick => quick.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_helpers() {
        assert_eq!(Scale::Quick.trials(80), 10);
        assert_eq!(Scale::Quick.trials(8), 3);
        assert_eq!(Scale::Full.trials(80), 80);
        assert_eq!(Scale::Quick.sizes(&[1, 2], &[3, 4, 5]), vec![1, 2]);
        assert_eq!(Scale::Full.sizes(&[1, 2], &[3, 4, 5]), vec![3, 4, 5]);
    }
}
