//! Micro-benchmark: dispatch overhead of the **persistent worker pool**
//! versus the old spawn-per-broadcast discipline, plus the structural
//! guarantees the fused round path relies on.
//!
//! `pool_overhead/dispatch` times one broadcast of a fixed `n = 10⁶`
//! element sweep two ways:
//!
//! * `spawn_per_dispatch` — build a fresh [`rayon::ThreadPool`] for every
//!   dispatch (thread creation + join on the timed path), which is what the
//!   engine did before the persistent pool landed;
//! * `persistent_pool` — reuse the process-wide [`rayon::global_pool`],
//!   whose workers park on a condvar between dispatches.
//!
//! The gap between the two is the per-round fixed cost the persistent pool
//! removes; it is what made `Parallel{t}` lose to sequential on
//! frontier-sized dispatches.
//!
//! `pool_overhead/round_dispatch_count` is an *assertion disguised as a
//! benchmark*: it steps a real 2-state process through sparse parallel
//! rounds and panics if any round costs more than 2 pool dispatches or more
//! than 4 barrier crossings — the budget the fused decide+scatter/flush
//! phases promise (down from ~4 dispatches before the rework).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::init::InitStrategy;
use mis_core::{ExecutionMode, Process, RoundStrategy, TwoStateProcess};
use mis_graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const N: usize = 1_000_000;
const THREADS: usize = 4;

/// The broadcast payload: each participant folds a disjoint range of a
/// shared buffer. Cheap enough that dispatch overhead dominates, real
/// enough that the compiler cannot elide it.
fn sweep(data: &[u64], ctx: rayon::BroadcastContext<'_>) -> u64 {
    let per = data.len().div_ceil(ctx.num_threads());
    let lo = (ctx.index() * per).min(data.len());
    let hi = (lo + per).min(data.len());
    data[lo..hi].iter().fold(0u64, |acc, &x| acc ^ x)
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_overhead");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));

    let data: Vec<u64> = (0..N as u64).collect();

    group.bench_with_input(
        BenchmarkId::new("spawn_per_dispatch", N),
        &data,
        |b, data| {
            b.iter(|| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(THREADS)
                    .build()
                    .unwrap();
                pool.broadcast(|ctx| sweep(data, ctx))
                    .into_iter()
                    .fold(0u64, |acc, x| acc ^ x)
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("persistent_pool", N), &data, |b, data| {
        let pool = rayon::global_pool(THREADS);
        b.iter(|| {
            pool.broadcast(|ctx| sweep(data, ctx))
                .into_iter()
                .fold(0u64, |acc, x| acc ^ x)
        });
    });
    group.finish();
}

/// Steps a 2-state process through sparse parallel rounds on the persistent
/// pool and asserts the fused round path's dispatch/barrier budget:
/// at most 2 dispatches and 4 barrier crossings per round.
fn bench_round_dispatch_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_overhead");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 100_000usize;
    let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
    // An uncommon thread count keeps this pool's stats counters free of
    // traffic from concurrently running benchmark groups.
    let threads = 5usize;
    let pool = rayon::global_pool(threads);
    let max_dispatches = AtomicU64::new(0);
    let max_barriers = AtomicU64::new(0);

    group.bench_function(BenchmarkId::new("round_dispatch_count", n), |b| {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        p.set_execution(ExecutionMode::Parallel { threads }, 13);
        p.set_strategy(RoundStrategy::Sparse);
        b.iter(|| {
            let before = pool.stats();
            p.step(&mut r);
            let after = pool.stats();
            max_dispatches.fetch_max(after.dispatches - before.dispatches, Ordering::Relaxed);
            max_barriers.fetch_max(after.barriers - before.barriers, Ordering::Relaxed);
            p.counts().active
        });
    });
    group.finish();

    let dispatches = max_dispatches.load(Ordering::Relaxed);
    let barriers = max_barriers.load(Ordering::Relaxed);
    assert!(
        dispatches <= 2,
        "fused round path regressed: {dispatches} pool dispatches in one round (budget: 2)"
    );
    assert!(
        barriers <= 4,
        "fused round path regressed: {barriers} barrier crossings in one round (budget: 4)"
    );
    eprintln!("round budget held: ≤{dispatches} dispatches, ≤{barriers} barriers per sparse round");
}

criterion_group!(benches, bench_dispatch_overhead, bench_round_dispatch_count);
criterion_main!(benches);
