//! Benchmark: graph generation and structural analysis substrate costs
//! (supporting the E7 good-graph experiment and all workload generators).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_graph::{generators, properties};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("gnp_sparse", n), &n, |b, &n| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| generators::gnp(n, 8.0 / n as f64, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("random_tree", n), &n, |b, &n| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| generators::random_tree(n, &mut rng));
        });
    }
    group.bench_function("gnp_dense_n2000", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| generators::gnp(2000, 0.3, &mut rng));
    });
    group.finish();
}

fn bench_properties(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_structural_properties");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = generators::gnp(1000, 0.05, &mut rng);
    group.bench_function("degeneracy_n1000", |b| {
        b.iter(|| properties::degeneracy(&g))
    });
    group.bench_function("max_common_neighbors_n1000", |b| {
        b.iter(|| properties::max_common_neighbors(&g))
    });
    group.bench_function("diameter_le_2_n1000", |b| {
        b.iter(|| properties::has_diameter_at_most_2(&g))
    });
    group.bench_function("good_graph_check_n1000", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            properties::check_good(
                &g,
                properties::GoodGraphConfig {
                    samples_per_property: 20,
                    p: 0.05,
                },
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_properties);
criterion_main!(benches);
