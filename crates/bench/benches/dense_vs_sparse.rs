//! Criterion group `dense_vs_sparse`: cost of one **early-phase** round at
//! `n = 10⁶` on sparse `G(n, 8/n)` under each round strategy.
//!
//! From a random initial configuration roughly half the vertices are active,
//! which is exactly the regime where the sparse worklist path used to lose
//! to the naive full scan (0.54–0.89x in the pre-adaptive BENCH_scale.json).
//! This group pins the comparison at micro-benchmark granularity: the dense
//! sweep must beat the sparse path here, `auto` must track the dense path,
//! and the naive reference is included as the yardstick. Every entry clones
//! the same snapshot inside the timed closure, so the clone overhead cancels
//! out of the comparison.
//!
//! Run just this group with `just bench-phase`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::init::InitStrategy;
use mis_core::{Process, RoundStrategy, TwoStateProcess};
use mis_graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_vs_sparse");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));

    let n = 1_000_000usize;
    let g = generators::gnp_counter(n, 8.0 / n as f64, 7);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let early = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);

    for strategy in [
        RoundStrategy::Sparse,
        RoundStrategy::Dense,
        RoundStrategy::Auto,
    ] {
        group.bench_with_input(
            BenchmarkId::new(&format!("early_{}", strategy.label()), n),
            &early,
            |b, proc| {
                let mut r = ChaCha8Rng::seed_from_u64(11);
                b.iter(|| {
                    let mut p = proc.clone();
                    p.set_strategy(strategy);
                    p.step(&mut r);
                    p.counts().active
                });
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("early_reference", n), &early, |b, proc| {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        b.iter(|| {
            let mut p = proc.clone();
            p.step_reference(&mut r);
            p.counts().active
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dense_vs_sparse);
criterion_main!(benches);
