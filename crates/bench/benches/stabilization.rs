//! Benchmark: full stabilization of each process on each of the paper's
//! graph families (one Criterion group per experiment family, matching the
//! experiment index E1–E6/E9 in EXPERIMENTS.md), plus the Luby baseline for
//! the E10 comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_baselines::luby_mis;
use mis_core::init::InitStrategy;
use mis_core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::{generators, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn stabilize_two_state(g: &Graph, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = TwoStateProcess::with_init(g, InitStrategy::Random, &mut rng);
    proc.run_to_stabilization(&mut rng, 10_000_000)
        .expect("stabilizes")
}

fn stabilize_three_state(g: &Graph, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = ThreeStateProcess::with_init(g, InitStrategy::Random, &mut rng);
    proc.run_to_stabilization(&mut rng, 10_000_000)
        .expect("stabilizes")
}

fn stabilize_three_color(g: &Graph, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = ThreeColorProcess::with_randomized_switch(g, InitStrategy::Random, &mut rng);
    proc.run_to_stabilization(&mut rng, 10_000_000)
        .expect("stabilizes")
}

/// E1 / E9 — cliques: 2-state (Θ(log² n)) vs 3-state (O(log n)).
fn bench_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_e9_clique");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    for n in [64usize, 256] {
        let g = generators::complete(n);
        group.bench_with_input(BenchmarkId::new("two_state", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_two_state(g, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("three_state", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_three_state(g, seed)
            });
        });
    }
    group.finish();
}

/// E2 — disjoint cliques.
fn bench_disjoint_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_disjoint_cliques");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    for side in [8usize, 16] {
        let g = generators::disjoint_cliques(side, side);
        group.bench_with_input(BenchmarkId::new("two_state", side * side), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_two_state(g, seed)
            });
        });
    }
    group.finish();
}

/// E3 — trees and bounded-arboricity graphs.
fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_trees");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for n in [256usize, 1024] {
        let g = generators::random_tree(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("two_state_tree", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_two_state(g, seed)
            });
        });
    }
    let g = generators::grid(32, 32);
    group.bench_with_input(BenchmarkId::new("two_state_grid", 1024usize), &g, |b, g| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            stabilize_two_state(g, seed)
        });
    });
    group.finish();
}

/// E4 — regular graphs of growing degree.
fn bench_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_regular");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    for d in [4usize, 16] {
        let g = generators::regular(256, d, &mut rng).expect("valid parameters");
        group.bench_with_input(BenchmarkId::new("two_state", d), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_two_state(g, seed)
            });
        });
    }
    group.finish();
}

/// E5 / E6 — G(n,p): 2-state at the theorem-2 density, 3-color at the
/// density outside the 2-state analysis.
fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_e6_gnp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for n in [256usize, 1024] {
        let p_sqrt = ((n as f64).ln() / n as f64).sqrt();
        let g = generators::gnp(n, p_sqrt, &mut rng);
        group.bench_with_input(BenchmarkId::new("two_state_p_sqrt", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_two_state(g, seed)
            });
        });
        let g = generators::gnp(n, (n as f64).powf(-0.25), &mut rng);
        group.bench_with_input(BenchmarkId::new("three_color_p_quarter", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_three_color(g, seed)
            });
        });
    }
    group.finish();
}

/// E10 — Luby baseline on the same sparse G(n,p) used by the comparison table.
fn bench_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_luby_baseline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    for n in [256usize, 1024] {
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("luby", n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            b.iter(|| luby_mis(g, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("two_state", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                stabilize_two_state(g, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cliques,
    bench_disjoint_cliques,
    bench_trees,
    bench_regular,
    bench_gnp,
    bench_luby
);
criterion_main!(benches);
