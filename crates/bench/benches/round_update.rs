//! Micro-benchmark: cost of one synchronous round of each process, on the
//! graph families the paper analyzes. This is the ablation bench for the
//! per-round update implementation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::init::InitStrategy;
use mis_core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_round_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_update");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graphs = vec![
        (
            "gnp_sparse_n2000",
            generators::gnp(2000, 4.0 / 2000.0, &mut rng),
        ),
        ("gnp_dense_n1000", generators::gnp(1000, 0.2, &mut rng)),
        ("tree_n4000", generators::random_tree(4000, &mut rng)),
        ("clique_n500", generators::complete(500)),
    ];

    for (label, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("two_state", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut proc = TwoStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_state", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut proc = ThreeStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_color", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let mut proc =
                ThreeColorProcess::with_randomized_switch(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_update);
criterion_main!(benches);
