//! Micro-benchmark: cost of one synchronous round of each process, on the
//! graph families the paper analyzes. This is the ablation bench for the
//! per-round update implementation called out in DESIGN.md.
//!
//! The `phase_round_cost` group contrasts the incremental frontier engine
//! against the naive full-scan reference path in the early phase (fresh
//! random configuration, ~half the vertices active) and the silent late
//! phase (stabilized configuration, empty frontier) at
//! `n ∈ {10⁴, 10⁵, 10⁶}` on sparse `G(n, 8/n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::init::InitStrategy;
use mis_core::{
    CounterRng, ExecutionMode, Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess,
};
use mis_graph::generators;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_round_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_update");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graphs = vec![
        (
            "gnp_sparse_n2000",
            generators::gnp(2000, 4.0 / 2000.0, &mut rng),
        ),
        ("gnp_dense_n1000", generators::gnp(1000, 0.2, &mut rng)),
        ("tree_n4000", generators::random_tree(4000, &mut rng)),
        ("clique_n500", generators::complete(500)),
    ];

    for (label, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("two_state", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut proc = TwoStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_state", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut proc = ThreeStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_color", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let mut proc =
                ThreeColorProcess::with_randomized_switch(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
    }
    group.finish();
}

/// Early-phase vs late-phase round cost, incremental engine vs full-scan
/// reference, on sparse `G(n, 8/n)`.
///
/// The early-phase benchmarks clone the process inside the timed closure so
/// every iteration steps the *same* high-activity configuration (the clone
/// cost is identical for both paths, so the comparison stays fair). The
/// silent-phase benchmarks need no clone: a stabilized 2-state process stays
/// stabilized, so stepping it is stationary — this is the steady state whose
/// cost the frontier engine reduces from `O(n + m)` to `O(1)`.
fn bench_phase_contrast(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_round_cost");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1000));

    for &n in &[10_000usize, 100_000, 1_000_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);

        let early = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        group.bench_with_input(BenchmarkId::new("early_fast", n), &early, |b, proc| {
            let mut r = ChaCha8Rng::seed_from_u64(11);
            b.iter(|| {
                let mut p = proc.clone();
                p.step(&mut r);
                p.counts().active
            });
        });
        group.bench_with_input(BenchmarkId::new("early_reference", n), &early, |b, proc| {
            let mut r = ChaCha8Rng::seed_from_u64(11);
            b.iter(|| {
                let mut p = proc.clone();
                p.step_reference(&mut r);
                p.counts().active
            });
        });

        let mut silent = early.clone();
        silent
            .run_to_stabilization(&mut rng, 1_000_000)
            .expect("2-state stabilizes on sparse G(n,p)");
        group.bench_with_input(BenchmarkId::new("silent_fast", n), &silent, |b, proc| {
            let mut p = proc.clone();
            let mut r = ChaCha8Rng::seed_from_u64(13);
            b.iter(|| {
                p.step(&mut r);
                p.round()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("silent_reference", n),
            &silent,
            |b, proc| {
                let mut p = proc.clone();
                let mut r = ChaCha8Rng::seed_from_u64(13);
                b.iter(|| {
                    p.step_reference(&mut r);
                    p.round()
                });
            },
        );
    }
    group.finish();
}

/// Early-phase round cost of the counter-based parallel engine at
/// `n = 10⁶` across 1/2/4/8 worker threads (plus the sequential engine as
/// the baseline entry). Speedups are bounded by the host's cores; the
/// benchmark shape (clone + one round per iteration, identical for every
/// entry) keeps the comparison fair either way.
fn bench_parallel_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_round");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));

    let n = 1_000_000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
    let early = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);

    group.bench_with_input(
        BenchmarkId::new("early_sequential", n),
        &early,
        |b, proc| {
            let mut r = ChaCha8Rng::seed_from_u64(11);
            b.iter(|| {
                let mut p = proc.clone();
                p.step(&mut r);
                p.counts().active
            });
        },
    );
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(&format!("early_parallel_t{threads}"), n),
            &early,
            |b, proc| {
                let mut r = ChaCha8Rng::seed_from_u64(11);
                b.iter(|| {
                    let mut p = proc.clone();
                    p.set_execution(ExecutionMode::Parallel { threads }, 13);
                    p.step(&mut r);
                    p.counts().active
                });
            },
        );
    }
    group.finish();
}

/// Micro-benchmark of the two randomness models: 1M Bernoulli draws from
/// the sequential ChaCha8 stream vs 1M counter-based Philox draws (the
/// per-vertex pure function the parallel engine evaluates).
fn bench_rng_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_models");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));

    const DRAWS: u64 = 1_000_000;
    group.bench_function("chacha8_stream_1m_coins", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            let mut ones = 0u64;
            for _ in 0..DRAWS {
                ones += rng.next_u64() & 1;
            }
            ones
        });
    });
    group.bench_function("counter_philox_1m_coins", |b| {
        let rng = CounterRng::new(3);
        b.iter(|| {
            let mut ones = 0u64;
            for v in 0..DRAWS {
                ones += rng.word(v, 17, 0) & 1;
            }
            ones
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_round_update,
    bench_phase_contrast,
    bench_parallel_round,
    bench_rng_models
);
criterion_main!(benches);
