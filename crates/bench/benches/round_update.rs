//! Micro-benchmark: cost of one synchronous round of each process, on the
//! graph families the paper analyzes. This is the ablation bench for the
//! per-round update implementation called out in DESIGN.md.
//!
//! The `phase_round_cost` group contrasts the incremental frontier engine
//! against the naive full-scan reference path in the early phase (fresh
//! random configuration, ~half the vertices active) and the silent late
//! phase (stabilized configuration, empty frontier) at
//! `n ∈ {10⁴, 10⁵, 10⁶}` on sparse `G(n, 8/n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::init::InitStrategy;
use mis_core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_round_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_update");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_millis(1500));

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graphs = vec![
        (
            "gnp_sparse_n2000",
            generators::gnp(2000, 4.0 / 2000.0, &mut rng),
        ),
        ("gnp_dense_n1000", generators::gnp(1000, 0.2, &mut rng)),
        ("tree_n4000", generators::random_tree(4000, &mut rng)),
        ("clique_n500", generators::complete(500)),
    ];

    for (label, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("two_state", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut proc = TwoStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_state", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut proc = ThreeStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_color", label), g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let mut proc =
                ThreeColorProcess::with_randomized_switch(g, InitStrategy::Random, &mut rng);
            b.iter(|| proc.step(&mut rng));
        });
    }
    group.finish();
}

/// Early-phase vs late-phase round cost, incremental engine vs full-scan
/// reference, on sparse `G(n, 8/n)`.
///
/// The early-phase benchmarks clone the process inside the timed closure so
/// every iteration steps the *same* high-activity configuration (the clone
/// cost is identical for both paths, so the comparison stays fair). The
/// silent-phase benchmarks need no clone: a stabilized 2-state process stays
/// stabilized, so stepping it is stationary — this is the steady state whose
/// cost the frontier engine reduces from `O(n + m)` to `O(1)`.
fn bench_phase_contrast(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_round_cost");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1000));

    for &n in &[10_000usize, 100_000, 1_000_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);

        let early = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        group.bench_with_input(BenchmarkId::new("early_fast", n), &early, |b, proc| {
            let mut r = ChaCha8Rng::seed_from_u64(11);
            b.iter(|| {
                let mut p = proc.clone();
                p.step(&mut r);
                p.counts().active
            });
        });
        group.bench_with_input(BenchmarkId::new("early_reference", n), &early, |b, proc| {
            let mut r = ChaCha8Rng::seed_from_u64(11);
            b.iter(|| {
                let mut p = proc.clone();
                p.step_reference(&mut r);
                p.counts().active
            });
        });

        let mut silent = early.clone();
        silent
            .run_to_stabilization(&mut rng, 1_000_000)
            .expect("2-state stabilizes on sparse G(n,p)");
        group.bench_with_input(BenchmarkId::new("silent_fast", n), &silent, |b, proc| {
            let mut p = proc.clone();
            let mut r = ChaCha8Rng::seed_from_u64(13);
            b.iter(|| {
                p.step(&mut r);
                p.round()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("silent_reference", n),
            &silent,
            |b, proc| {
                let mut p = proc.clone();
                let mut r = ChaCha8Rng::seed_from_u64(13);
                b.iter(|| {
                    p.step_reference(&mut r);
                    p.round()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round_update, bench_phase_contrast);
criterion_main!(benches);
