//! Self-stabilization in action: corrupt a running system and watch it heal.
//!
//! The example stabilizes the 2-state process on a random tree, then injects
//! transient faults of increasing severity (flipping a growing fraction of
//! the vertex states) and reports how long the system needs to converge back
//! to a valid MIS — without any coordination, reset, or knowledge that a
//! fault occurred.
//!
//! Run with: `cargo run --release --example fault_recovery`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::graph::generators;
use selfstab_mis::sim::fault::two_state_recovery;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let n = 2_000;
    let g = generators::random_tree(n, &mut rng);
    println!("graph: random tree with {} vertices", g.n());
    println!("\ncorrupted-fraction  initial-rounds  recovery-rounds  recovered-to-MIS");

    for fraction in [0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let out = two_state_recovery(&g, InitStrategy::Random, fraction, 1000, 1_000_000);
        println!(
            "{:>18} {:>15} {:>16} {:>17}",
            format!("{:.0}%", fraction * 100.0),
            out.initial_rounds,
            out.recovery_rounds,
            out.recovered_to_mis
        );
        assert!(out.recovered_to_mis);
    }

    println!("\nevery corruption level recovered to a valid MIS — the process is self-stabilizing");
}
