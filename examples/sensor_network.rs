//! Wireless sensor network scenario: elect a set of cluster heads (an MIS) in
//! a network of radio nodes that can only *beep*.
//!
//! The nodes are scattered on a unit square and two nodes can hear each other
//! when they are within communication radius — a random geometric graph, the
//! standard model for sensor deployments. The nodes then run the 2-state MIS
//! process in the beeping model (black nodes beep, white nodes listen, one
//! carrier-sense bit per round), starting from *arbitrary* states, exactly as
//! a self-stabilizing deployment would after a reboot or radio glitch.
//!
//! Run with: `cargo run --release --example sensor_network`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfstab_mis::comm::beeping::BeepingTwoStateMis;
use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::core::Process;
use selfstab_mis::graph::{generators, mis_check};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    // Deploy 500 sensors uniformly at random on the unit square with a
    // communication radius chosen so the network is connected w.h.p.
    let n = 500;
    let radius = 0.08;
    let (g, _positions) = generators::random_geometric(n, radius, &mut rng);
    println!(
        "sensor network: {} nodes, {} links, average degree {:.1}, max degree {}",
        g.n(),
        g.m(),
        g.average_degree(),
        g.max_degree()
    );

    // The nodes wake up in arbitrary states (e.g. after a power glitch).
    let mut network = BeepingTwoStateMis::with_init(&g, InitStrategy::Random, &mut rng);
    let rounds = network
        .run_to_stabilization(&mut rng, 1_000_000)
        .expect("the beeping MIS process stabilizes with probability 1");

    let cluster_heads = network.black_set();
    assert!(mis_check::is_mis(&g, &cluster_heads));
    println!(
        "elected {} cluster heads in {} beeping rounds ({} random bits total)",
        cluster_heads.len(),
        rounds,
        network.random_bits_used()
    );

    // Every sensor is either a cluster head or within one hop of one
    // (maximality), and no two cluster heads interfere (independence).
    let covered = g
        .vertices()
        .filter(|&u| {
            cluster_heads.contains(u) || g.neighbors(u).iter().any(|v| cluster_heads.contains(v))
        })
        .count();
    println!(
        "coverage: {covered}/{} sensors are a cluster head or adjacent to one",
        g.n()
    );
}
