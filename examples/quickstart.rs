//! Quickstart: run the 2-state MIS process on a random graph, watch it
//! stabilize, and verify that the black vertices form a maximal independent
//! set.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::core::{Process, TwoStateProcess};
use selfstab_mis::graph::{generators, mis_check};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2023);

    // A sparse Erdős–Rényi graph with average degree ~8.
    let n = 1_000;
    let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
    println!(
        "graph: n = {}, m = {}, max degree = {}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Self-stabilization means the initial states can be anything at all.
    let mut process = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);

    // Step the process manually so we can print the per-round partition sizes
    // used throughout the paper's analysis: |B_t|, |A_t|, |I_t|, |V_t|.
    println!("\nround   black  active  stable-black  unstable");
    loop {
        let c = process.counts();
        println!(
            "{:>5}  {:>6}  {:>6}  {:>12}  {:>8}",
            process.round(),
            c.black,
            c.active,
            c.stable_black,
            c.unstable
        );
        if process.is_stabilized() {
            break;
        }
        process.step(&mut rng);
    }

    let mis = process.black_set();
    assert!(
        mis_check::is_mis(&g, &mis),
        "the stabilized black set must be an MIS"
    );
    println!(
        "\nstabilized after {} rounds: MIS of size {} ({} random bits used, 2 states per vertex)",
        process.round(),
        mis.len(),
        process.random_bits_used()
    );
}
