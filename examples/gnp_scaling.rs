//! Scaling study: how the stabilization time of the three processes grows
//! with `n` on `G(n,p)` random graphs — a small interactive version of
//! experiments E5/E6.
//!
//! Run with: `cargo run --release --example gnp_scaling`

use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::sim::spec::{ExecutionMode, ExperimentSpec, GraphSpec};
use selfstab_mis::sim::sweep::{run_sweep, SweepTable};

fn sweep(algorithm: &str, sizes: &[usize], trials: usize) -> SweepTable {
    run_sweep(sizes.iter().map(|&n| {
        // Edge probability at the "hard" density p = sqrt(ln n / n).
        let p = ((n as f64).ln() / n as f64).sqrt();
        (
            n as f64,
            ExperimentSpec {
                name: format!("gnp-scaling-{algorithm}-{n}"),
                graph: GraphSpec::Gnp { n, p },
                algorithm: algorithm.to_string(),
                init: InitStrategy::Random,
                execution: ExecutionMode::Sequential,
                trials,
                max_rounds: 1_000_000,
                base_seed: 4242,
                record_trace: false,
                ..ExperimentSpec::default()
            },
        )
    }))
}

fn main() {
    let sizes = [128, 256, 512, 1024];
    let trials = 16;

    for algorithm in ["two-state", "three-state", "three-color"] {
        let table = sweep(algorithm, &sizes, trials);
        println!("\n=== {algorithm} on G(n, sqrt(ln n / n)) ===");
        println!("{}", table.to_pretty());
        // Rough shape check: the mean rounds should grow far slower than n.
        let first = table.rows.first().unwrap().rounds.mean.max(1.0);
        let last = table.rows.last().unwrap().rounds.mean.max(1.0);
        let n_ratio = *sizes.last().unwrap() as f64 / sizes[0] as f64;
        println!(
            "rounds grew by {:.1}x while n grew by {:.0}x — consistent with a polylog bound",
            last / first,
            n_ratio
        );
    }
}
