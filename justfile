# Local development recipes, kept in lockstep with .github/workflows/ci.yml.

# List recipes.
default:
    @just --list

# Release build of every target (libs, 17 exp_* bins, 3 benches, examples, tests).
build:
    cargo build --release --workspace --all-targets

# Unit, integration, and doc-tests for the whole workspace.
test:
    cargo test -q --workspace

# Formatting and clippy, exactly as CI runs them.
lint:
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc for the whole workspace, warnings denied (as CI runs it).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Print the algorithm registry (key, communication model, description).
list-algorithms:
    cargo run -p mis-sim --bin list_algorithms

# Apply formatting and mechanical clippy fixes.
fix:
    cargo fmt
    cargo clippy --workspace --all-targets --fix --allow-dirty -- -D warnings

# Churn experiment: incremental re-stabilization vs cold restart after
# edge-churn bursts (full scale: n = 10^6 across a fraction sweep).
churn *ARGS:
    cargo run --release -p mis-bench --bin exp_churn -- {{ARGS}}

# Byzantine experiment: adversarial containment within radius 2 of the
# Byzantine set (full scale: n = 10^6, fraction sweep + hub placement).
byzantine *ARGS:
    cargo run --release -p mis-bench --bin exp_byzantine -- {{ARGS}}

# Graph-service daemon on 127.0.0.1:7878 (override: `just serve --addr ...`).
serve *ARGS:
    cargo run --release -p mis-service --bin mis-serve -- {{ARGS}}

# Service load generator: thousands of concurrent jobs against an
# in-process daemon; writes results/svc_load.json and BENCH_service.json.
load *ARGS:
    cargo run --release -p mis-bench --bin svc_load -- {{ARGS}}

# Chaos harness: kill-and-restart cycles under concurrent traffic through
# a fault-injecting proxy, verifying zero acknowledged-job loss; writes
# results/svc_chaos.json and BENCH_recovery.json.
chaos *ARGS:
    cargo run --release -p mis-bench --bin svc_chaos -- {{ARGS}}

# Recovery demo: boot the daemon on a scratch data dir, seed it with a
# graph and a job, kill it, then restart on the same dir and show the
# replayed state.
recover:
    #!/usr/bin/env bash
    set -euo pipefail
    dir=$(mktemp -d /tmp/mis-recover-XXXX)
    cargo build --release -p mis-service --bin mis-serve
    ./target/release/mis-serve --addr 127.0.0.1:7979 --data-dir "$dir" &
    pid=$!
    sleep 1
    curl -s -X POST 127.0.0.1:7979/v1/graphs -d '{"name": "demo", "spec": {"Gnp": {"n": 64, "p": 0.1}}, "seed": 7}' > /dev/null
    curl -s -X POST 127.0.0.1:7979/v1/jobs -d '{"graph": 1, "algorithm": "two-state", "seed": 1}' > /dev/null
    sleep 1
    kill -9 $pid
    echo "-- killed daemon; restarting on $dir --"
    ./target/release/mis-serve --addr 127.0.0.1:7979 --data-dir "$dir" &
    pid=$!
    sleep 1
    curl -s 127.0.0.1:7979/v1/metrics
    echo
    curl -s 127.0.0.1:7979/v1/graphs
    echo
    kill $pid
    rm -rf "$dir"

# Criterion micro-benchmarks.
bench:
    cargo bench -p mis-bench

# Early-phase dense vs sparse round cost at n = 10^6 (the direction-
# optimizing engine's crossover group).
bench-phase:
    cargo bench -p mis-bench --bench dense_vs_sparse

# Persistent-pool dispatch overhead vs spawn-per-broadcast, plus the
# ≤2-dispatches-per-round budget assertion.
bench-pool:
    cargo bench -p mis-bench --bench pool_overhead

# Run one experiment binary at paper scale: `just exp e1_clique`.
exp NAME *ARGS:
    cargo run --release -p mis-bench --bin exp_{{NAME}} -- {{ARGS}}

# Quick smoke run of one experiment: `just smoke e1_clique`.
smoke NAME:
    cargo run --release -p mis-bench --bin exp_{{NAME}} -- --quick

# Everything CI enforces, in CI's order.
ci:
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    cargo build --release --workspace --all-targets
    cargo test -q --workspace
    cargo run --release -p mis-sim --bin list_algorithms
    cargo run --release -p mis-bench --bin exp_e1_clique -- --quick
    test -s results/e1_clique.csv
    cargo run --release -p mis-bench --bin exp_scale -- --quick --strategy auto
    test -s results/exp_scale.json
    cargo run --release -p mis-bench --bin exp_churn -- --quick
    test -s results/exp_churn.json
    cargo run --release -p mis-bench --bin exp_byzantine -- --quick
    test -s results/exp_byzantine.json
    cargo run --release -p mis-bench --bin svc_load -- --quick
    test -s results/svc_load.json
    cargo run --release -p mis-bench --bin svc_chaos -- --quick
    test -s results/svc_chaos.json
