//! # selfstab-mis
//!
//! A reproduction of *"Distributed Self-Stabilizing MIS with Few States and
//! Weak Communication"* (George Giakkoupis and Isabella Ziccardi, PODC 2023,
//! arXiv:2301.05059) as a production-quality Rust workspace.
//!
//! This facade crate re-exports the member crates of the workspace so that a
//! downstream user can depend on a single crate:
//!
//! * [`graph`] — static graph substrate, generators, and structural analysis
//!   (including the *(n,p)-good graph* checker of Definition 17).
//! * [`core`] — the paper's contribution: the 2-state, 3-state, and 3-color
//!   MIS processes and the randomized logarithmic switch.
//! * [`comm`] — weak-communication network models (beeping, synchronous stone
//!   age) and message-passing adaptations of the processes.
//! * [`baselines`] — classical and self-stabilizing MIS baselines (Luby,
//!   greedy, sequential self-stabilizing, Turau-style randomized).
//! * [`sim`] — experiment harness: trial runner, metrics, statistics, sweeps,
//!   and transient-fault injection.
//! * [`service`] — graph-service daemon: the registry's algorithms behind an
//!   HTTP API with named graphs, polled jobs, streaming results, and live
//!   topology mutation of running jobs.
//!
//! ## Quickstart
//!
//! ```
//! use selfstab_mis::graph::generators::gnp;
//! use selfstab_mis::core::{TwoStateProcess, Process, init::InitStrategy};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let g = gnp(200, 0.05, &mut rng);
//! let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
//! let rounds = proc.run_to_stabilization(&mut rng, 100_000).expect("stabilizes");
//! assert!(selfstab_mis::graph::mis_check::is_mis(&g, &proc.black_set()));
//! println!("stabilized after {rounds} rounds");
//! ```

pub use mis_baselines as baselines;
pub use mis_comm as comm;
pub use mis_core as core;
pub use mis_graph as graph;
pub use mis_service as service;
pub use mis_sim as sim;
